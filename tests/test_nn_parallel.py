"""Threaded gemm pool + int8 fused inference: determinism and lifecycle.

The contract under test (see :mod:`repro.nn.parallel`):

* **Bitwise determinism** — N-thread float32 execution produces byte-
  for-byte the same trained weights, losses, and forecasts as serial
  execution, for every N: work splits only on axes whose elements are
  computed independently, and cross-sample reductions keep the legacy
  order.
* **int8 accuracy** — quantized fused eval is opt-in and gated against
  the committed golden eval fixtures: metrics may move, but only within
  an explicit (still tiny) tolerance, and int8 reports are marked so
  they can never pass as the float32 reference.
* **Lifecycle** — the pool is lazy, fork-safe, grow-only, and
  idempotently shut down; accounting (profiler attribution, workspace
  high-water, gemm tallies) stays exact under concurrency.
"""

import multiprocessing
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.eval import (
    CheckpointForecaster,
    compare_reports,
    evaluate_store,
    evaluation_report,
    load_report,
)
from repro.gan import Pix2Pix, Pix2PixConfig
from repro.nn import parallel
from repro.serve import BatchingEngine, ModelRegistry

EVAL_FIXTURES = Path(__file__).parent / "fixtures" / "eval"

#: Per-metric absolute tolerance for the int8 golden gate.  An order of
#: magnitude looser than the float32 gate's 1e-4 (quantization is lossy
#: by design) but still far below any meaningful forecast-quality move;
#: measured int8 drift on the fixture model is ~1e-6.
INT8_GOLDEN_TOLERANCE = 1e-3


@pytest.fixture(autouse=True)
def _restore_serial():
    """Every test leaves the process back on the bitwise-legacy path."""
    yield
    parallel.set_num_threads(1)


def _tiny(seed: int = 3) -> Pix2Pix:
    return Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                 disc_filters=4, seed=seed))


def _train_fingerprint(threads: int, steps: int = 2, batch: int = 3):
    """Losses + full parameter state after a short run at ``threads``."""
    parallel.set_num_threads(threads)
    model = _tiny()
    rng = np.random.default_rng(11)
    x = rng.normal(size=(batch, 4, 16, 16)).astype(np.float32)
    y = np.tanh(rng.normal(size=(batch, 3, 16, 16))).astype(np.float32)
    losses = []
    for _ in range(steps):
        step = model.train_step(x, y)
        losses.append((step.d_real, step.d_fake, step.g_gan, step.g_l1))
    state = {}
    for prefix, net in (("G", model.generator), ("D", model.discriminator)):
        for key, value in net.state_dict().items():
            state[f"{prefix}.{key}"] = value.tobytes()
    forecast = model.forecast(x).copy()
    return losses, state, forecast


class TestBitwiseDeterminism:
    """N threads must equal 1 thread byte for byte, for every N."""

    @pytest.mark.parametrize("threads", [2, 4, 7])
    def test_train_step_bitwise_equal(self, threads):
        losses_1, state_1, forecast_1 = _train_fingerprint(1)
        losses_n, state_n, forecast_n = _train_fingerprint(threads)
        assert losses_n == losses_1
        assert forecast_n.tobytes() == forecast_1.tobytes()
        assert state_n.keys() == state_1.keys()
        for key, reference in state_1.items():
            assert state_n[key] == reference, key

    @pytest.mark.parametrize("threads", [2, 4, 7])
    def test_fused_eval_bitwise_equal(self, threads, tiny_model,
                                      tiny_inputs):
        batch = np.stack(list(tiny_inputs[:5]))
        parallel.set_num_threads(1)
        serial = tiny_model.forecast(batch).copy()
        parallel.set_num_threads(threads)
        assert tiny_model.forecast(batch).tobytes() == serial.tobytes()

    def test_batch1_eval_bitwise_equal(self, tiny_model, tiny_inputs):
        """Batch-1 (the placement-oracle shape) shards channels only."""
        parallel.set_num_threads(1)
        serial = tiny_model.forecast(tiny_inputs[0]).copy()
        parallel.set_num_threads(4)
        assert tiny_model.forecast(
            tiny_inputs[0]).tobytes() == serial.tobytes()

    @pytest.mark.parametrize("threads", [2, 4, 7])
    def test_serve_batched_path_bitwise_equal(self, threads, tiny_model,
                                              tiny_inputs):
        parallel.set_num_threads(1)
        expected = [tiny_model.forecast(x).copy() for x in tiny_inputs]
        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        with BatchingEngine(registry, max_batch=8, max_wait_ms=20.0,
                            threads=threads) as engine:
            futures = [engine.submit("tiny", x) for x in tiny_inputs]
            results = [f.result(timeout=30.0) for f in futures]
        for reference, result in zip(expected, results):
            assert result.image.tobytes() == reference.tobytes()


class TestInt8Golden:
    """Quantized eval is gated by the committed golden fixtures."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_report(EVAL_FIXTURES / "golden_report.json")

    @pytest.fixture(scope="class")
    def int8_report(self):
        from repro.data import ShardedStore

        store = ShardedStore.open(EVAL_FIXTURES / "store")
        forecaster = CheckpointForecaster.from_checkpoint(
            EVAL_FIXTURES / "model.npz", inference_mode="int8")
        result = evaluate_store(store, forecaster, batch_size=4)
        return evaluation_report(store, result, forecaster.identity,
                                 batch_size=4)

    def test_metrics_within_int8_tolerance(self, golden, int8_report):
        comparison = compare_reports(
            golden, int8_report,
            tolerances={name: INT8_GOLDEN_TOLERANCE
                        for name in golden["metrics"]},
            default_tolerance=INT8_GOLDEN_TOLERANCE)
        assert comparison.ok, (
            "int8 fused eval drifted beyond the quantization tolerance "
            "vs the golden report:\n" + comparison.format())

    def test_nrms_delta_is_tiny(self, golden, int8_report):
        delta = abs(int8_report["metrics"]["nrms"]
                    - golden["metrics"]["nrms"])
        assert delta < INT8_GOLDEN_TOLERANCE

    def test_int8_report_is_marked(self, int8_report):
        """An int8 report can never masquerade as the float32 golden."""
        assert int8_report["model"]["inference_mode"] == "int8"

    def test_float32_identity_is_unmarked(self):
        forecaster = CheckpointForecaster.from_checkpoint(
            EVAL_FIXTURES / "model.npz")
        assert "inference_mode" not in forecaster.identity

    def test_parallel_workers_match_serial_int8(self, int8_report):
        """workers>1 rebuilds forecasters in-process: the mode must ride
        through the pool initializer, not be lost to a fresh default."""
        from repro.data import ShardedStore
        from repro.eval.report import render_report

        store = ShardedStore.open(EVAL_FIXTURES / "store")
        forecaster = CheckpointForecaster.from_checkpoint(
            EVAL_FIXTURES / "model.npz", inference_mode="int8")
        result = evaluate_store(store, forecaster, batch_size=4,
                                workers=2)
        report = evaluation_report(store, result, forecaster.identity,
                                   batch_size=4)
        assert render_report(report) == render_report(int8_report)

    def test_mode_roundtrip_restores_bitwise_float32(self, tiny_model,
                                                     tiny_inputs):
        batch = np.stack(list(tiny_inputs[:3]))
        reference = tiny_model.forecast(batch).copy()
        quantized = tiny_model.set_inference_mode("int8").forecast(batch)
        assert quantized.tobytes() != reference.tobytes()
        assert np.max(np.abs(quantized - reference)) < 0.05
        restored = tiny_model.set_inference_mode("float32").forecast(batch)
        assert restored.tobytes() == reference.tobytes()

    def test_rejects_unknown_mode(self, tiny_model):
        with pytest.raises(ValueError, match="inference mode"):
            tiny_model.set_inference_mode("int4")


class TestPoolLifecycle:
    def test_set_num_threads_validates(self):
        for bad in (0, -2, True, 2.0, "4", None):
            with pytest.raises(ValueError):
                parallel.set_num_threads(bad)

    def test_get_reflects_set(self):
        parallel.set_num_threads(5)
        assert parallel.get_num_threads() == 5

    def test_shutdown_is_idempotent_and_pool_restarts(self):
        parallel.shutdown_pool()          # drop workers grown elsewhere
        parallel.set_num_threads(3)
        a = np.arange(24, dtype=np.float32).reshape(4, 2, 3)
        b = np.arange(12, dtype=np.float32).reshape(4, 3, 1)
        out = np.empty((4, 2, 1), dtype=np.float32)
        parallel.stacked_matmul(a, b, out)
        assert parallel.pool_stats()["pool_workers"] == 2
        parallel.shutdown_pool()
        parallel.shutdown_pool()          # second call is a no-op
        assert parallel.pool_stats()["pool_workers"] == 0
        again = np.empty_like(out)        # next region restarts lazily
        parallel.stacked_matmul(a, b, again)
        assert again.tobytes() == out.tobytes()
        assert parallel.pool_stats()["pool_workers"] == 2

    def test_pool_grows_but_never_shrinks(self):
        parallel.shutdown_pool()
        parallel.set_num_threads(2)
        parallel.parallel_for(4, lambda s, e: None)
        assert parallel.pool_stats()["pool_workers"] == 1
        parallel.set_num_threads(4)
        parallel.parallel_for(4, lambda s, e: None)
        assert parallel.pool_stats()["pool_workers"] == 3
        parallel.set_num_threads(2)
        parallel.parallel_for(4, lambda s, e: None)
        assert parallel.pool_stats()["pool_workers"] == 3

    def test_shard_exception_propagates_after_join(self):
        parallel.set_num_threads(4)

        def boom(start, stop):
            if start == 0:
                raise RuntimeError("shard 0 failed")

        with pytest.raises(RuntimeError, match="shard 0 failed"):
            parallel.parallel_for(4, boom)
        # The pool survives a failed region.
        parallel.parallel_for(4, lambda s, e: None)

    def test_forked_child_rebuilds_stale_pool(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        parallel.set_num_threads(3)
        rng = np.random.default_rng(0)
        a = rng.normal(size=(6, 4, 5)).astype(np.float32)
        b = rng.normal(size=(6, 5, 2)).astype(np.float32)
        expected = np.matmul(a, b)
        out = np.empty_like(expected)
        parallel.stacked_matmul(a, b, out)   # parent pool now exists
        assert out.tobytes() == expected.tobytes()

        ctx = multiprocessing.get_context("fork")
        child_bytes = ctx.SimpleQueue()
        process = ctx.Process(target=_fork_child, args=(a, b, child_bytes))
        process.start()
        payload = child_bytes.get()
        process.join(timeout=30.0)
        assert process.exitcode == 0
        assert payload == expected.tobytes()

    def test_spans_cover_range_exactly(self):
        for total in (1, 2, 7, 16):
            for shards in (1, 2, 3, 7):
                spans = parallel._spans(total, min(shards, total))
                assert spans[0][0] == 0 and spans[-1][1] == total
                for (_, stop), (start, _) in zip(spans, spans[1:]):
                    assert start == stop


def _fork_child(a, b, out_queue):
    """Runs in a forked child: the inherited pool handle has a stale pid
    and no live worker threads; the first region must rebuild it."""
    out = np.empty((a.shape[0], a.shape[1], b.shape[2]), dtype=a.dtype)
    parallel.stacked_matmul(a, b, out)
    stats = parallel.pool_stats()
    assert stats["pool_workers"] == 2, stats
    out_queue.put(out.tobytes())


class TestAccounting:
    def test_gemm_stats_track_variants(self, tiny_model, tiny_inputs):
        parallel.reset_gemm_stats()
        batch = np.stack(list(tiny_inputs[:2]))
        tiny_model.forecast(batch)
        stats = parallel.gemm_stats()
        assert stats["float32"]["calls"] > 0
        assert stats["int8"]["calls"] == 0
        tiny_model.set_inference_mode("int8")
        try:
            tiny_model.forecast(batch)
        finally:
            tiny_model.set_inference_mode("float32")
        stats = parallel.gemm_stats()
        assert stats["int8"]["calls"] > 0

    def test_profiler_attributes_threads(self, make_model):
        from repro.obs import Profiler

        model = make_model(seed=7)
        rng = np.random.default_rng(2)
        inputs = [rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
                  for _ in range(2)]
        profiler = Profiler()
        profiler.attach(model.generator, "G")
        try:
            workers = [threading.Thread(target=model.generator.forward_eval,
                                        args=(x,)) for x in inputs[:1]]
            model.generator.forward_eval(inputs[1])
            for worker in workers:
                worker.start()
                worker.join()
            snapshot = profiler.snapshot()
        finally:
            profiler.detach()
        per_thread = [t["calls"] for t in snapshot["threads"].values()]
        assert sum(per_thread) == snapshot["totals"]["calls"]
        assert sum(1 for calls in per_thread if calls) >= 2
        assert "parallel" in snapshot
        assert set(snapshot["parallel"]["gemms"]) == {"float32", "int8"}

    def test_workspace_peak_is_stable_under_threads(self, make_model):
        model = make_model(seed=9)
        rng = np.random.default_rng(4)
        batch = rng.normal(size=(4, 4, 16, 16)).astype(np.float32)
        parallel.set_num_threads(4)
        model.forecast(batch)
        peak = model.workspace.peak_nbytes
        assert peak >= model.workspace.nbytes > 0
        for _ in range(3):
            model.forecast(batch)
            assert model.workspace.peak_nbytes == peak


class TestSpecAndEngineKnobs:
    def test_trainspec_threads_validates(self):
        from repro.train import TrainSpec

        assert TrainSpec(name="run", threads=4).threads == 4
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ValueError, match="threads"):
                TrainSpec(name="run", threads=bad)

    def test_trainspec_threads_roundtrips_json(self):
        from repro.train import TrainSpec

        spec = TrainSpec(name="run", threads=3)
        assert TrainSpec.from_json(spec.to_json()).threads == 3

    def test_engine_validates_knobs(self, tiny_model):
        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        with pytest.raises(ValueError, match="threads"):
            BatchingEngine(registry, threads=0)
        with pytest.raises(ValueError, match="inference_mode"):
            BatchingEngine(registry, inference_mode="fp16")

    def test_engine_applies_inference_mode(self, make_model, tiny_inputs):
        model = make_model(seed=13)
        parallel.set_num_threads(1)
        reference = model.forecast(tiny_inputs[0]).copy()
        registry = ModelRegistry()
        registry.register("tiny", model)
        with BatchingEngine(registry, max_batch=2, max_wait_ms=0.0,
                            inference_mode="int8") as engine:
            quantized = engine.forecast("tiny", tiny_inputs[0])
        assert quantized.tobytes() != reference.tobytes()
        assert np.max(np.abs(quantized - reference)) < 0.05
        model.set_inference_mode("float32")
        assert model.forecast(
            tiny_inputs[0]).tobytes() == reference.tobytes()
