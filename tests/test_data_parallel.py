"""Parallel generation tests: worker-pool builds match serial builds."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.data import ShardedStore, build_design_store, sample_content_hash
from repro.flows import build_design_bundle
from repro.fpga.generators import scaled_suite


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """The same smoke build, serial and with a 2-worker pool."""
    root = tmp_path_factory.mktemp("stores")
    spec = scaled_suite(SMOKE)[0]
    serial = build_design_store(spec, SMOKE, root / "serial",
                                num_placements=4, seed=3, workers=0,
                                shard_size=2)
    parallel = build_design_store(spec, SMOKE, root / "parallel",
                                  num_placements=4, seed=3, workers=2,
                                  shard_size=2)
    return serial, parallel


class TestDeterminism:
    def test_worker_pool_matches_serial_hashes(self, stores):
        serial, parallel = stores
        assert serial.sample_hashes == parallel.sample_hashes
        assert serial.num_samples == parallel.num_samples == 4

    def test_manifest_structure_equivalent(self, stores):
        serial, parallel = stores
        for key in ("image_size", "input_channels", "target_channels",
                    "designs", "shard_size"):
            assert serial.manifest[key] == parallel.manifest[key]
        assert ([s["num_samples"] for s in serial.manifest["shards"]]
                == [s["num_samples"] for s in parallel.manifest["shards"]])

    def test_samples_equal_arrays(self, stores):
        serial, parallel = stores
        for a, b in zip(serial.iter_samples(), parallel.iter_samples()):
            np.testing.assert_array_equal(a.x, b.x)
            np.testing.assert_array_equal(a.y, b.y)
            assert a.placer_options == b.placer_options
            assert a.true_congestion == b.true_congestion

    def test_both_verify_clean(self, stores):
        serial, parallel = stores
        assert serial.verify() == []
        assert parallel.verify() == []

    def test_matches_legacy_bundle_pipeline(self, stores):
        """The store build emits the same samples as build_design_bundle."""
        serial, _ = stores
        spec = scaled_suite(SMOKE)[0]
        bundle = build_design_bundle(spec, SMOKE, num_placements=4, seed=3)
        assert ([sample_content_hash(s) for s in bundle.dataset]
                == serial.sample_hashes)


class TestProvenance:
    def test_build_records_provenance(self, stores):
        serial, parallel = stores
        record = serial.manifest["provenance"][0]
        assert record["design"] == "diffeq1"
        assert record["num_placements"] == 4
        assert record["seed"] == 3
        assert record["workers"] == 0
        assert parallel.manifest["provenance"][0]["workers"] == 2

    def test_channel_width_in_metadata(self, stores):
        serial, parallel = stores
        assert serial.metadata["channel_width"] == \
            parallel.metadata["channel_width"]


class TestMultiDesignAppend:
    def test_appending_second_design(self, tmp_path):
        specs = scaled_suite(SMOKE)[:2]
        store = build_design_store(specs[0], SMOKE, tmp_path / "s",
                                   num_placements=2, seed=1, shard_size=4)
        build_design_store(specs[1], SMOKE, tmp_path / "s",
                           num_placements=2, seed=1, shard_size=4,
                           image_size=store.image_size, store=store)
        assert store.num_samples == 4
        assert store.designs == [specs[0].name, specs[1].name]
        assert len(store.manifest["provenance"]) == 2
        assert store.verify() == []
