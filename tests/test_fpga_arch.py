"""Architecture model tests: grid geometry, site compatibility, capacities."""

import pytest

from repro.fpga import BlockType, FpgaArchitecture, Site, paper_architecture


class TestConstruction:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(2, 2)

    def test_rejects_overlapping_special_columns(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(8, 8, mem_columns=(3,), mul_columns=(3,))

    def test_rejects_out_of_range_columns(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(8, 8, mem_columns=(9,))

    def test_rejects_bad_channel_width(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(8, 8, channel_width=0)

    def test_paper_architecture_matches_figure2(self):
        # Figure 2: 8 columns, memory in column 3, multipliers in column 7.
        arch = paper_architecture(8)
        assert arch.column_type(3) is BlockType.MEM
        assert arch.column_type(7) is BlockType.MUL
        clb_columns = [x for x in range(1, 9)
                       if arch.column_type(x) is BlockType.CLB]
        assert len(clb_columns) == 6

    def test_paper_architecture_pattern_repeats(self):
        arch = paper_architecture(25)
        assert arch.column_type(13) is BlockType.MEM
        assert arch.column_type(17) is BlockType.MUL


class TestIoRing:
    def test_corners_hold_no_pads(self):
        arch = FpgaArchitecture(4, 4)
        assert not arch.is_io_tile(0, 0)
        assert not arch.is_io_tile(5, 5)
        assert not arch.is_io_tile(0, 5)

    def test_edges_are_io(self):
        arch = FpgaArchitecture(4, 4)
        assert arch.is_io_tile(0, 2)
        assert arch.is_io_tile(5, 3)
        assert arch.is_io_tile(2, 0)
        assert arch.is_io_tile(1, 5)

    def test_interior_is_not_io(self):
        arch = FpgaArchitecture(4, 4)
        assert not arch.is_io_tile(2, 2)

    def test_io_capacity_eight_ports_per_pad(self):
        # The paper's architecture: each pad offers eight ports.
        arch = FpgaArchitecture(4, 4, io_capacity=8)
        perimeter_pads = 4 * 4  # 4 per side, no corners
        assert len(arch.io_sites) == perimeter_pads * 8


class TestSites:
    def test_clb_sites_exclude_special_columns(self):
        arch = FpgaArchitecture(8, 8, mem_columns=(3,), mul_columns=(7,))
        xs = {site.x for site in arch.clb_sites}
        assert 3 not in xs and 7 not in xs
        assert len(arch.clb_sites) == 6 * 8

    def test_macro_sites_are_quantized(self):
        arch = FpgaArchitecture(8, 8, mem_columns=(3,), mem_height=2)
        ys = [site.y for site in arch.mem_sites]
        assert ys == [1, 3, 5, 7]

    def test_macro_sites_do_not_overflow_grid(self):
        arch = FpgaArchitecture(8, 7, mem_columns=(3,), mem_height=3)
        for site in arch.mem_sites:
            assert site.y + arch.mem_height - 1 <= arch.height

    def test_capacity_counts(self):
        arch = paper_architecture(8)
        assert arch.capacity(BlockType.CLB) == len(arch.clb_sites)
        assert arch.capacity(BlockType.IO) == len(arch.io_sites)


class TestCompatibility:
    @pytest.fixture
    def arch(self):
        return FpgaArchitecture(8, 8, mem_columns=(3,), mul_columns=(7,),
                                mem_height=2, mul_height=2)

    def test_clb_in_clb_column(self, arch):
        assert arch.compatible(BlockType.CLB, Site(1, 1))
        assert not arch.compatible(BlockType.CLB, Site(3, 1))

    def test_mem_alignment(self, arch):
        assert arch.compatible(BlockType.MEM, Site(3, 1))
        assert not arch.compatible(BlockType.MEM, Site(3, 2))  # misaligned
        assert arch.compatible(BlockType.MEM, Site(3, 3))

    def test_mem_cannot_hang_off_top(self, arch):
        tall = FpgaArchitecture(8, 7, mem_columns=(3,), mem_height=2)
        assert not tall.compatible(BlockType.MEM, Site(3, 7))

    def test_io_only_on_ring(self, arch):
        assert arch.compatible(BlockType.IO, Site(0, 4, subtile=7))
        assert not arch.compatible(BlockType.IO, Site(0, 4, subtile=8))
        assert not arch.compatible(BlockType.IO, Site(4, 4))

    def test_interior_subtile_must_be_zero(self, arch):
        assert not arch.compatible(BlockType.CLB, Site(1, 1, subtile=1))

    def test_site_block_type(self, arch):
        assert arch.site_block_type(Site(0, 3)) is BlockType.IO
        assert arch.site_block_type(Site(3, 3)) is BlockType.MEM
        assert arch.site_block_type(Site(2, 3)) is BlockType.CLB

    def test_every_enumerated_site_is_compatible(self, arch):
        for block_type in BlockType:
            for site in arch.sites_for(block_type):
                assert arch.compatible(block_type, site), (block_type, site)
