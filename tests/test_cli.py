"""CLI tests (python -m repro)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.gan import Dataset, Pix2Pix


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datagen_args(self):
        args = build_parser().parse_args(
            ["datagen", "--design", "SHA", "--out", "x.npz",
             "--scale", "smoke"])
        assert args.design == "SHA"
        assert args.scale == "smoke"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--checkpoints", "ckpts", "--port", "0",
             "--max-batch", "4", "--cache-size", "32"])
        assert args.command == "serve"
        assert args.max_batch == 4
        assert args.cache_size == 32
        assert args.max_wait_ms == 2.0


class TestCommands:
    def test_datagen_writes_dataset(self, tmp_path):
        out = tmp_path / "data.npz"
        code = main(["datagen", "--design", "diffeq1", "--placements", "2",
                     "--out", str(out), "--scale", "smoke", "--seed", "3"])
        assert code == 0
        dataset = Dataset.load(out)
        assert len(dataset) == 2
        assert dataset[0].design == "diffeq1"

    def test_datagen_unknown_design_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown design"):
            main(["datagen", "--design", "nonsense",
                  "--out", str(tmp_path / "x.npz"), "--scale", "smoke"])

    def test_train_then_forecast_roundtrip(self, tmp_path):
        model_path = tmp_path / "model.npz"
        code = main(["train", "--designs", "diffeq1", "--epochs", "1",
                     "--out", str(model_path), "--scale", "smoke",
                     "--seed", "3"])
        assert code == 0
        assert model_path.exists()

        out_dir = tmp_path / "forecast"
        code = main(["forecast", "--model", str(model_path),
                     "--design", "diffeq1", "--seed", "3",
                     "--out", str(out_dir), "--scale", "smoke"])
        assert code == 0
        assert (out_dir / "forecast.png").exists()
        assert (out_dir / "place.png").exists()

    def test_table2_subset(self, capsys, tmp_path):
        code = main(["table2", "--designs", "diffeq1,diffeq2",
                     "--scale", "smoke", "--seed", "4",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Acc.1" in out
        assert "diffeq1" in out and "diffeq2" in out


class TestServeCommand:
    def test_serve_http_roundtrip(self, tmp_path):
        """`python -m repro serve` starts, answers, and shuts down cleanly."""
        import os
        import re
        import signal
        import subprocess
        import sys

        model_path = tmp_path / "diffeq1.npz"
        code = main(["train", "--designs", "diffeq1", "--epochs", "1",
                     "--out", str(model_path), "--scale", "smoke",
                     "--seed", "3"])
        assert code == 0

        env = dict(os.environ, REPRO_SCALE="smoke")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--checkpoints", str(tmp_path), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            port = None
            for _ in range(50):
                line = process.stdout.readline()
                match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "server never reported its URL"

            from repro.serve import ForecastClient

            client = ForecastClient(port=port)
            assert client.healthz()["status"] == "ok"
            assert [m["model_id"] for m in client.models()] == ["diffeq1"]
            model = Pix2Pix.load(model_path)
            size = model.config.image_size
            x = np.random.default_rng(0).normal(
                size=(4, size, size)).astype(np.float32)
            reply = client.forecast("diffeq1", x=x)
            np.testing.assert_array_equal(reply.forecast,
                                          model.forecast(x))
        finally:
            process.send_signal(signal.SIGINT)
            stdout, _ = process.communicate(timeout=30)
        assert process.returncode == 0, stdout
        assert "shutting down" in stdout


class TestCheckpointing:
    def test_pix2pix_save_load_roundtrip(self, tmp_path):
        from repro.gan import Pix2PixConfig

        model = Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                      disc_filters=4, seed=2))
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        y = np.tanh(rng.normal(size=(1, 3, 16, 16))).astype(np.float32)
        model.train_step(x, y)
        expected = model.generate(x, sample_noise=False)

        path = tmp_path / "ckpt.npz"
        model.save(path)
        restored = Pix2Pix.load(path)
        assert restored.config == model.config
        np.testing.assert_allclose(
            restored.generate(x, sample_noise=False), expected, atol=1e-6)


class TestDataCommands:
    def test_data_parser_defaults(self):
        args = build_parser().parse_args(
            ["data", "build", "--out", "store", "--scale", "smoke"])
        assert args.data_command == "build"
        assert args.workers == 0
        assert args.shard_size == 16

    def test_data_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["data"])

    def test_build_verify_stats_roundtrip(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(["data", "build", "--designs", "diffeq1",
                     "--placements", "2", "--workers", "2",
                     "--shard-size", "1", "--out", str(store_dir),
                     "--scale", "smoke", "--seed", "3"])
        assert code == 0
        assert main(["data", "verify", str(store_dir)]) == 0
        assert main(["data", "stats", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 samples in 2 shard(s)" in out
        assert "verified" in out
        assert "num_samples" in out

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        from repro.data import ShardedStore

        store_dir = tmp_path / "store"
        main(["data", "build", "--designs", "diffeq1", "--placements", "2",
              "--shard-size", "2", "--out", str(store_dir),
              "--scale", "smoke", "--seed", "3"])
        store = ShardedStore.open(store_dir)
        shard = store_dir / store.manifest["shards"][0]["name"]
        shard.write_bytes(b"not an npz")
        with pytest.raises(SystemExit, match="problem"):
            main(["data", "verify", str(store_dir)])

    def test_convert_and_merge(self, tmp_path, capsys):
        from repro.data import ShardedStore

        archive = tmp_path / "legacy.npz"
        main(["datagen", "--design", "diffeq1", "--placements", "2",
              "--out", str(archive), "--scale", "smoke", "--seed", "3"])
        converted = tmp_path / "converted"
        assert main(["data", "convert", str(archive),
                     "--out", str(converted)]) == 0
        merged = tmp_path / "merged"
        assert main(["data", "merge", str(converted),
                     "--out", str(merged), "--shard-size", "4"]) == 0
        store = ShardedStore.open(merged)
        assert store.num_samples == 2
        assert store.verify() == []

    def test_invalid_shard_size_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="shard_size"):
            main(["data", "build", "--designs", "diffeq1",
                  "--placements", "1", "--shard-size", "0",
                  "--out", str(tmp_path / "s"), "--scale", "smoke"])

    def test_build_onto_existing_store_exits(self, tmp_path):
        store_dir = tmp_path / "store"
        main(["data", "build", "--designs", "diffeq1", "--placements", "1",
              "--out", str(store_dir), "--scale", "smoke", "--seed", "3"])
        with pytest.raises(SystemExit, match="already exists"):
            main(["data", "build", "--designs", "diffeq1",
                  "--placements", "1", "--out", str(store_dir),
                  "--scale", "smoke", "--seed", "3"])
