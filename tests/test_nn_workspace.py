"""Workspace-arena and fused-eval parity suite.

The hot-path contract of PR 4: with a workspace attached, the layers
route every large temporary through reused arena buffers and the
training path computes *bitwise* the same results as the allocating
per-call path; the fused ``forward_eval`` route (which folds conv + norm
+ activation and caches folded weights) matches an eval-mode ``forward``
within tight tolerance; and arena reuse across different input shapes
never leaks state between calls.
"""

import numpy as np
import pytest

from repro.gan import Pix2Pix, Pix2PixConfig
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    LeakyReLU,
    Module,
    Sequential,
    Workspace,
    col2im_bt,
    conv2d_output_size,
)

CONFIG = dict(image_size=16, base_filters=4, disc_filters=4, seed=3)


def tiny_model(**overrides) -> Pix2Pix:
    return Pix2Pix(Pix2PixConfig(**{**CONFIG, **overrides}))


def detached(model: Pix2Pix) -> Pix2Pix:
    """Same model class, arena disabled — the legacy per-call path."""
    model.generator.attach_workspace(None)
    model.discriminator.attach_workspace(None)
    return model


class TestWorkspace:
    def test_buffer_identity_is_stable_across_acquisitions(self):
        ws = Workspace()
        owner = object()
        a = ws.buffer(owner, "x", (4, 5))
        b = ws.buffer(owner, "x", (4, 5))
        assert a is b

    def test_slots_are_private_per_owner_and_name(self):
        ws = Workspace()
        one, two = object(), object()
        a = ws.buffer(one, "x", (8,))
        b = ws.buffer(two, "x", (8,))
        c = ws.buffer(one, "y", (8,))
        assert not np.shares_memory(a, b)
        assert not np.shares_memory(a, c)

    def test_backing_grows_to_high_water_mark(self):
        ws = Workspace()
        owner = object()
        small = ws.buffer(owner, "x", (4,))
        big = ws.buffer(owner, "x", (64,))
        again = ws.buffer(owner, "x", (64,))
        assert big.shape == (64,)
        assert again is big
        assert small.shape == (4,)
        assert ws.nbytes >= big.nbytes

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        owner = object()
        f = ws.buffer(owner, "x", (8,), np.float32)
        b = ws.buffer(owner, "x", (8,), bool)
        assert f.dtype == np.float32 and b.dtype == np.bool_

    def test_clear_drops_capacity(self):
        ws = Workspace()
        ws.buffer(object(), "x", (128,))
        assert ws.nbytes > 0
        ws.clear()
        assert ws.nbytes == 0 and ws.num_slots == 0

    def test_growth_invalidates_layer_view_memo(self):
        """After a slot reallocation the layer must re-fetch views — a
        stale memo would pin (and hand out) the orphaned backing."""
        module = Module()
        module.attach_workspace(Workspace())
        small = module._buf("x", (4,))
        big = module._buf("x", (64,))
        assert not np.shares_memory(small, big)   # old backing was dropped
        small_again = module._buf("x", (4,))
        assert np.shares_memory(small_again, big)

    def test_conv_preserves_float64_inputs(self):
        """Gradcheck-style float64 promotion must not be downcast by the
        arena's float32-default output buffers."""
        conv = Conv2d(2, 3, rng=np.random.default_rng(0))
        conv.weight.data = conv.weight.data.astype(np.float64)
        conv.bias.data = conv.bias.data.astype(np.float64)
        conv.attach_workspace(Workspace())
        x = np.random.default_rng(1).normal(size=(1, 2, 8, 8))
        out = conv.forward(x)
        assert out.dtype == np.float64


class TestLayerParity:
    """Arena-backed layers are bitwise the detached (allocating) path."""

    @pytest.mark.parametrize("stride,pad", [(2, 1), (1, 1), (2, 0)])
    def test_conv2d_forward_backward_bitwise(self, stride, pad):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        grad_shape = None
        outs = {}
        for arena in (False, True):
            conv = Conv2d(3, 5, kernel=4, stride=stride, pad=pad,
                          rng=np.random.default_rng(1))
            if arena:
                conv.attach_workspace(Workspace())
            out = conv.forward(x)
            grad_shape = out.shape
            grad = np.random.default_rng(2).normal(
                size=grad_shape).astype(np.float32)
            gin = conv.backward(grad)
            outs[arena] = (out.copy(), gin.copy(), conv.weight.grad.copy(),
                           conv.bias.grad.copy())
        for got, want in zip(outs[True], outs[False]):
            np.testing.assert_array_equal(got, want)

    def test_conv_transpose2d_forward_backward_bitwise(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 4, 4, 4)).astype(np.float32)
        outs = {}
        for arena in (False, True):
            conv = ConvTranspose2d(4, 3, rng=np.random.default_rng(4))
            if arena:
                conv.attach_workspace(Workspace())
            out = conv.forward(x)
            grad = np.random.default_rng(5).normal(
                size=out.shape).astype(np.float32)
            gin = conv.backward(grad)
            outs[arena] = (out.copy(), gin.copy(), conv.weight.grad.copy())
        for got, want in zip(outs[True], outs[False]):
            np.testing.assert_array_equal(got, want)

    def test_batchnorm_and_activation_bitwise(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        grad = rng.normal(size=x.shape).astype(np.float32)
        outs = {}
        for arena in (False, True):
            block = Sequential(BatchNorm2d(4), LeakyReLU(0.2))
            if arena:
                block.attach_workspace(Workspace())
            out = block.forward(x)
            gin = block.backward(grad)
            outs[arena] = (out.copy(), gin.copy())
        np.testing.assert_array_equal(outs[True][0], outs[False][0])
        np.testing.assert_array_equal(outs[True][1], outs[False][1])

    def test_conv_backward_can_skip_input_gradient(self):
        conv = Conv2d(3, 4, rng=np.random.default_rng(7))
        x = np.random.default_rng(8).normal(size=(1, 3, 8, 8)).astype(
            np.float32)
        out = conv.forward(x)
        assert conv.backward(np.ones_like(out),
                             need_input_grad=False) is None
        assert float(np.abs(conv.weight.grad).sum()) > 0.0


class TestTrainStepParity:
    def test_train_steps_match_detached_path_bitwise(self):
        """The arena changes memory reuse, never a single training bit."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        y = np.tanh(rng.normal(size=(1, 3, 16, 16))).astype(np.float32)

        arena_model = tiny_model()
        legacy_model = detached(tiny_model())
        for _ in range(3):
            arena_losses = arena_model.train_step(x, y)
            legacy_losses = legacy_model.train_step(x, y)
            assert arena_losses.g_total == legacy_losses.g_total
            assert arena_losses.d_total == legacy_losses.d_total
        for (name, param), (_, ref) in zip(
                arena_model.generator.named_parameters(),
                legacy_model.generator.named_parameters()):
            np.testing.assert_array_equal(param.data, ref.data, err_msg=name)

    def test_forward_matches_detached_path_bitwise(self):
        x = np.random.default_rng(10).normal(
            size=(2, 4, 16, 16)).astype(np.float32)
        a = tiny_model()
        b = detached(tiny_model())
        np.testing.assert_array_equal(a.generator.forward(x),
                                      b.generator.forward(x))


class TestFusedEval:
    def test_forward_eval_matches_eval_forward_within_tolerance(self):
        """BN folding reassociates float ops; drift stays tiny."""
        model = tiny_model()
        rng = np.random.default_rng(11)
        x = rng.normal(size=(2, 4, 16, 16)).astype(np.float32)
        model.train_step(x[:1], np.tanh(rng.normal(
            size=(1, 3, 16, 16))).astype(np.float32))
        fused = model.generator.forward_eval(x)
        model.generator.eval()
        reference = model.generator.forward(x)
        model.generator.train(True)
        np.testing.assert_allclose(fused, reference, atol=1e-5, rtol=1e-5)

    def test_forward_eval_writes_no_gradient_caches(self):
        model = tiny_model()
        x = np.random.default_rng(12).normal(
            size=(1, 4, 16, 16)).astype(np.float32)
        model.generator.forward_eval(x)
        with pytest.raises(RuntimeError, match="backward called before"):
            model.generator.backward(np.zeros((1, 3, 16, 16), np.float32))

    def test_forward_eval_is_batch_invariant_bitwise(self):
        model = tiny_model()
        rng = np.random.default_rng(13)
        xb = rng.normal(size=(5, 4, 16, 16)).astype(np.float32)
        batched = model.generator.forward_eval(xb).copy()
        singles = np.concatenate([model.generator.forward_eval(xb[i:i + 1])
                                  for i in range(5)])
        np.testing.assert_array_equal(batched, singles)

    def test_fold_cache_invalidates_on_training(self):
        model = tiny_model()
        rng = np.random.default_rng(14)
        x = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        y = np.tanh(rng.normal(size=(1, 3, 16, 16))).astype(np.float32)
        before = model.generator.forward_eval(x).copy()
        model.train_step(x, y)          # bumps workspace.generation
        after = model.generator.forward_eval(x)
        assert not np.array_equal(before, after)
        model.generator.eval()
        reference = model.generator.forward(x)
        np.testing.assert_allclose(after, reference, atol=1e-5, rtol=1e-5)

    def test_fold_cache_invalidates_on_state_load(self):
        source = tiny_model(seed=21)
        target = tiny_model(seed=22)
        x = np.random.default_rng(15).normal(
            size=(1, 4, 16, 16)).astype(np.float32)
        target.generator.forward_eval(x)     # populate fold caches
        target.generator.load_state_dict(source.generator.state_dict())
        np.testing.assert_allclose(
            target.generator.forward_eval(x),
            source.generator.forward_eval(x), atol=1e-6)


class TestWorkspaceReuse:
    def test_alternating_shapes_do_not_cross_contaminate(self):
        """Two input shapes through one model: every result matches a
        fresh model's — the arena's shape-keyed buffers never leak."""
        model = tiny_model()
        rng = np.random.default_rng(16)
        one = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        three = rng.normal(size=(3, 4, 16, 16)).astype(np.float32)
        sequence = [one, three, one, three, one]
        got = [model.forecast(x).copy() for x in sequence]
        for x, result in zip(sequence, got):
            fresh = tiny_model().forecast(x)
            np.testing.assert_array_equal(result, fresh)

    def test_eval_between_forward_and_backward_keeps_gradients(self):
        """Inference between a layer's forward and backward must not
        clobber the gradient caches (eval owns separate arena slots)."""
        rng = np.random.default_rng(23)
        x = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
        other = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        grads = {}
        for interleave in (False, True):
            conv = Conv2d(3, 4, rng=np.random.default_rng(24))
            conv.attach_workspace(Workspace())
            out = conv.forward(x)
            if interleave:
                conv.forward_eval(other)
            conv.backward(np.ones_like(out))
            grads[interleave] = conv.weight.grad.copy()
        np.testing.assert_array_equal(grads[True], grads[False])

        # Same guarantee through the whole generator: forecast mid-step.
        y = np.tanh(rng.normal(size=(1, 3, 16, 16))).astype(np.float32)
        x16 = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        a = tiny_model()
        b = tiny_model()
        fake_a = a.generator.forward(x16)
        fake_b = b.generator.forward(x16)
        a.forecast(x16)                      # fused eval mid-"step"
        a.generator.backward(np.ones_like(fake_a), need_input_grad=False)
        b.generator.backward(np.ones_like(fake_b), need_input_grad=False)
        for (name, param), (_, ref) in zip(
                a.generator.named_parameters(),
                b.generator.named_parameters()):
            np.testing.assert_array_equal(param.grad, ref.grad, err_msg=name)

    def test_train_after_eval_after_train_stays_consistent(self):
        rng = np.random.default_rng(17)
        x = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        y = np.tanh(rng.normal(size=(1, 3, 16, 16))).astype(np.float32)
        a = tiny_model()
        b = detached(tiny_model())
        a.train_step(x, y)
        b.train_step(x, y)
        a.forecast(x)                       # interleave fused eval
        a.train_step(x, y)
        b.train_step(x, y)
        for (name, param), (_, ref) in zip(
                a.generator.named_parameters(),
                b.generator.named_parameters()):
            np.testing.assert_array_equal(param.data, ref.data, err_msg=name)

    def test_workspace_reports_capacity(self):
        model = tiny_model()
        x = np.random.default_rng(18).normal(
            size=(1, 4, 16, 16)).astype(np.float32)
        model.forecast(x)
        assert model.workspace.nbytes > 0
        assert model.workspace.num_slots > 0


class TestScatterPlans:
    @pytest.mark.parametrize("geometry", [
        (1, 3, 8, 8, 4, 2, 1), (2, 5, 16, 12, 4, 2, 1),
        (1, 2, 7, 7, 4, 1, 1), (1, 4, 9, 9, 3, 2, 1),
        (3, 1, 6, 6, 2, 2, 0), (1, 3, 8, 8, 4, 4, 1),
        (2, 3, 16, 16, 6, 2, 2),
    ])
    def test_phase_plane_scatter_matches_col2im_bt(self, geometry):
        n, c, h, w, k, s, p = geometry
        out_h = conv2d_output_size(h, k, s, p)
        out_w = conv2d_output_size(w, k, s, p)
        rng = np.random.default_rng(sum(geometry))
        col_bt = rng.normal(size=(n, c * k * k, out_h * out_w)).astype(
            np.float32)
        reference = col2im_bt(col_bt.copy(), (n, c, h, w), k, s, p)
        module = Module()
        module.attach_workspace(Workspace())
        got = module._scatter_bt(col_bt, (n, c, h, w), k, s, p, "t")
        np.testing.assert_array_equal(got, reference)
        # Plan replay (cached views) must reproduce the result exactly.
        again = module._scatter_bt(col_bt, (n, c, h, w), k, s, p, "t")
        np.testing.assert_array_equal(again, reference)
