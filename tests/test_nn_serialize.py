"""Checkpoint serialization: round-trips and mismatch diagnostics."""

import numpy as np
import pytest

from repro.nn import Adam, Conv2d, Sequential, BatchNorm2d
from repro.nn.serialize import (
    CheckpointError,
    HEADER_KEY,
    MODULE_STATE_FORMAT,
    load_optimizer_state_dict,
    load_state_dict,
    make_header,
    optimizer_state_dict,
    read_npz,
    rng_state_from_json,
    rng_state_to_json,
    save_state_dict,
    state_dict_mismatch,
    validate_state_dict,
    write_npz,
)


def small_module(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(Conv2d(2, 4, rng=rng), BatchNorm2d(4),
                      Conv2d(4, 2, rng=rng))


class TestRoundTrip:
    def test_save_load_restores_output(self, tmp_path):
        module = small_module(seed=1)
        x = np.random.default_rng(0).normal(size=(1, 2, 8, 8)
                                            ).astype(np.float32)
        module.train(False)
        expected = module.forward(x)

        path = tmp_path / "module.npz"
        save_state_dict(module, path)
        restored = small_module(seed=2)
        load_state_dict(restored, path)
        restored.train(False)
        np.testing.assert_array_equal(restored.forward(x), expected)

    def test_buffers_round_trip(self, tmp_path):
        module = small_module(seed=1)
        module.forward(np.random.default_rng(0).normal(
            size=(2, 2, 8, 8)).astype(np.float32))   # moves running stats
        path = tmp_path / "module.npz"
        save_state_dict(module, path)
        restored = small_module(seed=2)
        load_state_dict(restored, path)
        np.testing.assert_array_equal(restored.layers[1].running_mean,
                                      module.layers[1].running_mean)


class TestMismatchDiagnostics:
    def test_mismatch_lists_both_directions(self):
        module = small_module()
        state = module.state_dict()
        del state["layers.0.weight"]
        state["bogus"] = np.zeros(1)
        missing, unexpected = state_dict_mismatch(module, state)
        assert missing == ["layers.0.weight"]
        assert unexpected == ["bogus"]

    def test_validate_names_every_bad_key(self):
        module = small_module()
        state = module.state_dict()
        del state["layers.0.weight"]
        del state["layers.1.running_mean"]
        state["bogus"] = np.zeros(1)
        with pytest.raises(ValueError) as excinfo:
            validate_state_dict(module, state)
        message = str(excinfo.value)
        assert "layers.0.weight" in message
        assert "layers.1.running_mean" in message
        assert "bogus" in message

    def test_validate_passes_on_exact_match(self):
        module = small_module()
        validate_state_dict(module, module.state_dict())

    def test_load_truncated_checkpoint_raises_value_error(self, tmp_path):
        module = small_module()
        state = module.state_dict()
        del state["layers.2.bias"]
        path = tmp_path / "truncated.npz"
        np.savez(path, **state)
        with pytest.raises(ValueError, match="layers.2.bias"):
            load_state_dict(small_module(), path)

    def test_load_foreign_checkpoint_raises_value_error(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, **{"totally.wrong": np.zeros(2)})
        with pytest.raises(ValueError, match="totally.wrong"):
            load_state_dict(small_module(), path)


class TestVersionedHeader:
    def test_archives_carry_the_header(self, tmp_path):
        module = small_module()
        path = tmp_path / "module.npz"
        save_state_dict(module, path)
        with np.load(path) as archive:
            assert HEADER_KEY in archive.files

    def test_legacy_headerless_archive_still_loads(self, tmp_path):
        module = small_module(seed=1)
        path = tmp_path / "legacy.npz"
        np.savez(path, **module.state_dict())   # pre-header format
        load_state_dict(small_module(seed=2), path)

    def test_wrong_format_named_in_error(self, tmp_path):
        path = tmp_path / "foreign.npz"
        write_npz(path, {"x": np.zeros(2)},
                  make_header("someone.elses-schema", 1))
        with pytest.raises(CheckpointError, match="someone.elses-schema"):
            read_npz(path, MODULE_STATE_FORMAT, 1)

    def test_future_version_rejected_with_guidance(self, tmp_path):
        path = tmp_path / "future.npz"
        write_npz(path, {"x": np.zeros(2)},
                  make_header(MODULE_STATE_FORMAT, 99))
        with pytest.raises(CheckpointError, match="version"):
            load_state_dict(small_module(), path)

    def test_atomic_write_leaves_no_staging_file(self, tmp_path):
        write_npz(tmp_path / "out.npz", {"x": np.ones(3)},
                  make_header(MODULE_STATE_FORMAT, 1))
        assert [p.name for p in tmp_path.iterdir()] == ["out.npz"]


class TestOptimizerStateRoundTrip:
    def _trained_adam(self, seed: int):
        module = small_module(seed=seed)
        optimizer = Adam(module.parameters(), lr=1e-3)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 2, 8, 8)).astype(np.float32)
        for _ in range(3):
            optimizer.zero_grad()
            out = module.forward(x)
            module.backward(np.ones_like(out))
            optimizer.step()
        return module, optimizer, x

    def test_adam_moments_and_step_round_trip_bitwise(self):
        module_a, opt_a, x = self._trained_adam(seed=1)
        state = optimizer_state_dict(opt_a)
        assert set(state) == {"step", "exp_avg", "exp_avg_sq"}

        module_b = small_module(seed=1)
        module_b.load_state_dict(module_a.state_dict())
        opt_b = Adam(module_b.parameters(), lr=1e-3)
        load_optimizer_state_dict(opt_b, state)
        assert opt_b._step == opt_a._step

        for optimizer, module in ((opt_a, module_a), (opt_b, module_b)):
            optimizer.zero_grad()
            out = module.forward(x)
            module.backward(np.ones_like(out))
            optimizer.step()
        for (name, pa), (_, pb) in zip(module_a.named_parameters(),
                                       module_b.named_parameters()):
            np.testing.assert_array_equal(pb.data, pa.data, err_msg=name)

    def test_bn_running_stats_round_trip(self, tmp_path):
        module, _, _ = self._trained_adam(seed=1)
        bn = module.layers[1]
        assert not np.allclose(bn.running_mean, 0.0)   # stats moved
        path = tmp_path / "m.npz"
        save_state_dict(module, path)
        restored = small_module(seed=2)
        load_state_dict(restored, path)
        np.testing.assert_array_equal(restored.layers[1].running_mean,
                                      bn.running_mean)
        np.testing.assert_array_equal(restored.layers[1].running_var,
                                      bn.running_var)

    def test_size_mismatch_is_a_clear_error(self):
        _, optimizer, _ = self._trained_adam(seed=1)
        state = optimizer_state_dict(optimizer)
        state["exp_avg"] = state["exp_avg"][:-1]
        other = small_module(seed=1)
        fresh = Adam(other.parameters(), lr=1e-3)
        with pytest.raises(CheckpointError, match="exp_avg"):
            load_optimizer_state_dict(fresh, state)

    def test_missing_entry_is_a_clear_error(self):
        _, optimizer, _ = self._trained_adam(seed=1)
        state = optimizer_state_dict(optimizer)
        del state["exp_avg_sq"]
        other = small_module(seed=1)
        with pytest.raises(CheckpointError, match="exp_avg_sq"):
            load_optimizer_state_dict(Adam(other.parameters(), lr=1e-3),
                                      state)


class TestRngStateRoundTrip:
    def test_stream_resumes_mid_sequence(self):
        rng = np.random.default_rng(42)
        rng.random(10)
        captured = rng_state_to_json(rng)
        expected = rng.random(5)
        restored = np.random.default_rng(0)
        rng_state_from_json(restored, captured)
        np.testing.assert_array_equal(restored.random(5), expected)

    def test_bit_generator_mismatch_rejected(self):
        state = rng_state_to_json(np.random.default_rng(0))
        other = np.random.Generator(np.random.PCG64DXSM(0))
        with pytest.raises(CheckpointError, match="PCG64"):
            rng_state_from_json(other, state)


class TestPix2PixCheckpointValidation:
    def test_load_rejects_non_checkpoint(self, tmp_path):
        from repro.gan import Pix2Pix

        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a Pix2Pix checkpoint"):
            Pix2Pix.load(path)

    def test_load_rejects_truncated_checkpoint(self, tmp_path, tiny_model):
        path = tmp_path / "model.npz"
        tiny_model.save(path)
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
        dropped = next(key for key in state if key.startswith("G."))
        del state[dropped]
        np.savez(tmp_path / "bad.npz", **state)

        from repro.gan import Pix2Pix

        with pytest.raises(ValueError, match=dropped[2:].replace(".", r"\.")):
            Pix2Pix.load(tmp_path / "bad.npz")

    def test_save_load_forecast_roundtrip(self, tmp_path, tiny_model):
        """Checkpoint -> restore -> forecast is bitwise-stable."""
        from repro.gan import Pix2Pix

        x = np.random.default_rng(0).normal(size=(4, 16, 16)
                                            ).astype(np.float32)
        expected = tiny_model.forecast(x)
        path = tmp_path / "model.npz"
        tiny_model.save(path)
        restored = Pix2Pix.load(path)
        np.testing.assert_array_equal(restored.forecast(x), expected)
