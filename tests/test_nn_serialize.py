"""Checkpoint serialization: round-trips and mismatch diagnostics."""

import numpy as np
import pytest

from repro.nn import Conv2d, Sequential, BatchNorm2d
from repro.nn.serialize import (
    load_state_dict,
    save_state_dict,
    state_dict_mismatch,
    validate_state_dict,
)


def small_module(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(Conv2d(2, 4, rng=rng), BatchNorm2d(4),
                      Conv2d(4, 2, rng=rng))


class TestRoundTrip:
    def test_save_load_restores_output(self, tmp_path):
        module = small_module(seed=1)
        x = np.random.default_rng(0).normal(size=(1, 2, 8, 8)
                                            ).astype(np.float32)
        module.train(False)
        expected = module.forward(x)

        path = tmp_path / "module.npz"
        save_state_dict(module, path)
        restored = small_module(seed=2)
        load_state_dict(restored, path)
        restored.train(False)
        np.testing.assert_array_equal(restored.forward(x), expected)

    def test_buffers_round_trip(self, tmp_path):
        module = small_module(seed=1)
        module.forward(np.random.default_rng(0).normal(
            size=(2, 2, 8, 8)).astype(np.float32))   # moves running stats
        path = tmp_path / "module.npz"
        save_state_dict(module, path)
        restored = small_module(seed=2)
        load_state_dict(restored, path)
        np.testing.assert_array_equal(restored.layers[1].running_mean,
                                      module.layers[1].running_mean)


class TestMismatchDiagnostics:
    def test_mismatch_lists_both_directions(self):
        module = small_module()
        state = module.state_dict()
        del state["layers.0.weight"]
        state["bogus"] = np.zeros(1)
        missing, unexpected = state_dict_mismatch(module, state)
        assert missing == ["layers.0.weight"]
        assert unexpected == ["bogus"]

    def test_validate_names_every_bad_key(self):
        module = small_module()
        state = module.state_dict()
        del state["layers.0.weight"]
        del state["layers.1.running_mean"]
        state["bogus"] = np.zeros(1)
        with pytest.raises(ValueError) as excinfo:
            validate_state_dict(module, state)
        message = str(excinfo.value)
        assert "layers.0.weight" in message
        assert "layers.1.running_mean" in message
        assert "bogus" in message

    def test_validate_passes_on_exact_match(self):
        module = small_module()
        validate_state_dict(module, module.state_dict())

    def test_load_truncated_checkpoint_raises_value_error(self, tmp_path):
        module = small_module()
        state = module.state_dict()
        del state["layers.2.bias"]
        path = tmp_path / "truncated.npz"
        np.savez(path, **state)
        with pytest.raises(ValueError, match="layers.2.bias"):
            load_state_dict(small_module(), path)

    def test_load_foreign_checkpoint_raises_value_error(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, **{"totally.wrong": np.zeros(2)})
        with pytest.raises(ValueError, match="totally.wrong"):
            load_state_dict(small_module(), path)


class TestPix2PixCheckpointValidation:
    def test_load_rejects_non_checkpoint(self, tmp_path):
        from repro.gan import Pix2Pix

        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a Pix2Pix checkpoint"):
            Pix2Pix.load(path)

    def test_load_rejects_truncated_checkpoint(self, tmp_path, tiny_model):
        path = tmp_path / "model.npz"
        tiny_model.save(path)
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
        dropped = next(key for key in state if key.startswith("G."))
        del state[dropped]
        np.savez(tmp_path / "bad.npz", **state)

        from repro.gan import Pix2Pix

        with pytest.raises(ValueError, match=dropped[2:].replace(".", r"\.")):
            Pix2Pix.load(tmp_path / "bad.npz")

    def test_save_load_forecast_roundtrip(self, tmp_path, tiny_model):
        """Checkpoint -> restore -> forecast is bitwise-stable."""
        from repro.gan import Pix2Pix

        x = np.random.default_rng(0).normal(size=(4, 16, 16)
                                            ).astype(np.float32)
        expected = tiny_model.forecast(x)
        path = tmp_path / "model.npz"
        tiny_model.save(path)
        restored = Pix2Pix.load(path)
        np.testing.assert_array_equal(restored.forecast(x), expected)
