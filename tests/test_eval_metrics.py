"""Metric registry unit tests: values, edge cases, shims."""

import numpy as np
import pytest

from repro.eval.metrics import (
    METRICS,
    batched_accuracy,
    compute_per_sample,
    aggregate,
    hotspot_iou,
    hotspot_precision,
    hotspot_recall,
    metric_suite,
    nrms,
    pixel_mae,
    pixel_rmse,
    roc_auc,
    roc_curve,
    ssim,
    utilization_map,
)
from repro.gan.metrics import per_pixel_accuracy
from repro.viz.colors import utilization_to_rgb


def heatmap(utilization: np.ndarray) -> np.ndarray:
    """(3, H, W) image painting a (H, W) utilization map on the gradient."""
    return np.moveaxis(utilization_to_rgb(utilization), -1, 0)


def rand_pair(seed=0, n=4, size=8):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3, size, size)), rng.random((n, 3, size, size))


class TestPixelErrors:
    def test_mae_rmse_known_values(self):
        target = np.zeros((3, 4, 4))
        pred = np.full((3, 4, 4), 0.25)
        assert pixel_mae(pred, target) == pytest.approx(0.25)
        assert pixel_rmse(pred, target) == pytest.approx(0.25)

    def test_zero_for_identical(self):
        pred, _ = rand_pair()
        assert np.all(pixel_mae(pred, pred) == 0.0)
        assert np.all(pixel_rmse(pred, pred) == 0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            pixel_mae(np.zeros((3, 4, 4)), np.zeros((3, 5, 5)))

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError, match="expected"):
            pixel_mae(np.zeros((4, 4)), np.zeros((4, 4)))


class TestNrms:
    def test_normalized_by_target_range(self):
        target = np.zeros((1, 3, 4, 4))
        target[0, :, 0, 0] = 0.5          # range = 0.5
        pred = target + 0.1
        expected = 0.1 / 0.5
        assert nrms(pred, target)[0] == pytest.approx(expected)

    def test_zero_variance_target_is_defined(self):
        """Regression: a flat target used to make the normalizer 0/0."""
        target = np.full((3, 4, 4), 0.5)
        value = nrms(target + 0.25, target)
        assert np.isfinite(value)
        assert value == pytest.approx(0.25)   # falls back to raw RMS

    def test_perfect_flat_prediction_is_zero(self):
        target = np.full((3, 4, 4), 0.5)
        assert nrms(target, target) == 0.0


class TestAccuracy:
    def test_matches_paper_metric_per_sample(self):
        pred, target = rand_pair(seed=3)
        batched = batched_accuracy(pred, target)
        for i in range(pred.shape[0]):
            expected = per_pixel_accuracy(
                pred[i].astype(np.float32), target[i].astype(np.float32))
            assert batched[i] == pytest.approx(expected, abs=1e-7)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            batched_accuracy(np.zeros((3, 2, 2)), np.zeros((3, 2, 2)),
                             tolerance=-0.1)


class TestSsim:
    def test_identical_images_score_one(self):
        pred, _ = rand_pair(seed=1)
        np.testing.assert_allclose(ssim(pred, pred), 1.0, atol=1e-9)

    def test_bounded_and_discriminative(self):
        pred, target = rand_pair(seed=2)
        values = ssim(pred, target)
        assert np.all(values <= 1.0)
        assert np.all(values < 0.9)   # random pairs are dissimilar

    def test_window_shrinks_to_image(self):
        tiny = np.random.default_rng(0).random((1, 3, 3, 3))
        assert np.isfinite(ssim(tiny, tiny * 0.5)).all()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((3, 4, 4)), np.zeros((3, 4, 4)), window=0)


class TestHotspots:
    def test_decode_roundtrip(self):
        u = np.random.default_rng(0).random((6, 6))
        np.testing.assert_allclose(utilization_map(heatmap(u)), u,
                                   atol=1e-6)

    def test_known_counts(self):
        true_u = np.zeros((4, 4))
        true_u[:2, :] = 0.9               # 8 hot pixels
        pred_u = np.zeros((4, 4))
        pred_u[0, :] = 0.9                # predicts 4, all truly hot
        pred, target = heatmap(pred_u), heatmap(true_u)
        assert hotspot_precision(pred, target, 0.5) == pytest.approx(1.0)
        assert hotspot_recall(pred, target, 0.5) == pytest.approx(0.5)
        assert hotspot_iou(pred, target, 0.5) == pytest.approx(0.5)

    def test_empty_hotspots_are_defined(self):
        """Regression: empty sets used to divide by zero."""
        cold = heatmap(np.zeros((4, 4)))
        assert hotspot_precision(cold, cold, 0.5) == 1.0
        assert hotspot_recall(cold, cold, 0.5) == 1.0
        assert hotspot_iou(cold, cold, 0.5) == 1.0

    def test_false_alarm_on_cold_truth_scores_zero_precision(self):
        cold = heatmap(np.zeros((4, 4)))
        hot = heatmap(np.ones((4, 4)))
        assert hotspot_precision(hot, cold, 0.5) == 0.0
        assert hotspot_recall(hot, cold, 0.5) == 1.0   # nothing to find
        assert hotspot_iou(hot, cold, 0.5) == 0.0

    def test_threshold_out_of_range_rejected(self):
        cold = heatmap(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            hotspot_precision(cold, cold, 1.5)


class TestRoc:
    def test_perfect_predictor_scores_one(self):
        u = np.zeros((4, 4))
        u[0, :] = 1.0
        image = heatmap(u)
        assert roc_auc(image, image) == pytest.approx(1.0)

    def test_inverted_predictor_scores_zero(self):
        u = np.zeros((4, 4))
        u[:2, :] = 1.0
        assert roc_auc(heatmap(1.0 - u), heatmap(u)) == pytest.approx(0.0)

    def test_single_class_target_is_defined(self):
        """Regression: all-cold targets used to produce 0/0 rates."""
        cold = heatmap(np.zeros((4, 4)))
        assert roc_auc(np.random.default_rng(0).random((3, 4, 4)),
                       cold) == 1.0

    def test_curve_shapes_and_endpoint(self):
        pred, target = rand_pair(seed=5, n=2)
        fpr, tpr = roc_curve(pred, target, num_thresholds=9)
        assert fpr.shape == tpr.shape == (2, 10)
        assert np.all(fpr[:, -1] == 0.0) and np.all(tpr[:, -1] == 0.0)

    def test_too_few_thresholds_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros((3, 2, 2)), np.zeros((3, 2, 2)),
                      num_thresholds=1)


class TestRegistry:
    def test_default_suite_names(self):
        names = set(METRICS)
        assert {"accuracy", "mae", "rmse", "nrms", "ssim",
                "hotspot_precision@0.5", "hotspot_recall@0.7",
                "hotspot_iou@0.5", "roc_auc@0.5"} <= names

    def test_custom_thresholds_are_tagged(self):
        suite = metric_suite(thresholds=(0.25,), roc_threshold=0.4)
        assert "hotspot_iou@0.25" in suite
        assert "roc_auc@0.4" in suite
        assert "hotspot_iou@0.5" not in suite

    def test_compute_and_aggregate(self):
        pred, target = rand_pair(seed=7, n=3)
        per_sample = compute_per_sample(pred, target)
        assert set(per_sample) == set(METRICS)
        assert all(values.shape == (3,) for values in per_sample.values())
        summary = aggregate(per_sample)
        for name, values in per_sample.items():
            assert summary[name] == pytest.approx(float(values.mean()))

    def test_metric_descriptions(self):
        for metric in METRICS.values():
            assert metric.description


class TestGanMetricsShim:
    def test_reexports_resolve(self):
        from repro.gan import metrics as gan_metrics

        assert gan_metrics.nrms is nrms
        assert gan_metrics.ssim is ssim
        assert gan_metrics.hotspot_precision is hotspot_precision

    def test_unknown_attribute_still_raises(self):
        from repro.gan import metrics as gan_metrics

        with pytest.raises(AttributeError):
            gan_metrics.no_such_metric
