"""Forecast cache: content addressing, LRU eviction, counters."""

import threading

import numpy as np
import pytest

from repro.serve import ForecastCache, input_digest


def image(value: float) -> np.ndarray:
    return np.full((4, 4, 3), value, dtype=np.float32)


class TestInputDigest:
    def test_deterministic_and_content_addressed(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert input_digest(a) == input_digest(a.copy())

    def test_distinguishes_content(self):
        a = np.zeros((3, 4), dtype=np.float32)
        b = a.copy()
        b[0, 0] = 1e-7
        assert input_digest(a) != input_digest(b)

    def test_distinguishes_shape_and_dtype(self):
        a = np.zeros(12, dtype=np.float32)
        assert input_digest(a) != input_digest(a.reshape(3, 4))
        assert input_digest(a) != input_digest(a.astype(np.float64))

    def test_accepts_noncontiguous(self):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        assert input_digest(a[:, ::2]) == input_digest(
            np.ascontiguousarray(a[:, ::2]))


class TestForecastCache:
    def test_miss_then_hit(self):
        cache = ForecastCache(4)
        assert cache.get("m", "d1") is None
        cache.put("m", "d1", image(0.5))
        hit = cache.get("m", "d1")
        assert hit is not None
        np.testing.assert_array_equal(hit, image(0.5))
        assert cache.hits == 1 and cache.misses == 1

    def test_keys_include_model_id(self):
        cache = ForecastCache(4)
        cache.put("a", "d", image(0.1))
        assert cache.get("b", "d") is None

    def test_lru_eviction_order(self):
        cache = ForecastCache(2)
        cache.put("m", "d1", image(0.1))
        cache.put("m", "d2", image(0.2))
        cache.get("m", "d1")                 # d1 is now most recent
        cache.put("m", "d3", image(0.3))     # evicts d2
        assert cache.get("m", "d1") is not None
        assert cache.get("m", "d2") is None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_entries_are_read_only(self):
        cache = ForecastCache(2)
        cache.put("m", "d", image(0.5))
        hit = cache.get("m", "d")
        with pytest.raises(ValueError):
            hit[0, 0, 0] = 1.0

    def test_zero_capacity_disables(self):
        cache = ForecastCache(0)
        cache.put("m", "d", image(0.5))
        assert cache.get("m", "d") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ForecastCache(-1)

    def test_stats_and_hit_rate(self):
        cache = ForecastCache(4)
        cache.put("m", "d", image(0.5))
        cache.get("m", "d")
        cache.get("m", "other")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1

    def test_thread_safety_under_contention(self):
        cache = ForecastCache(8)

        def worker(tag: int) -> None:
            for index in range(200):
                key = f"d{(tag * 7 + index) % 16}"
                if cache.get("m", key) is None:
                    cache.put("m", key, image(float(tag)))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 8
        assert cache.hits + cache.misses == 800
