"""End-to-end integration: netlist -> place -> route -> images -> cGAN.

Exercises every subsystem in one pipeline at smoke scale, asserting the
cross-module contracts the experiments rely on.
"""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.flows import build_design_bundle
from repro.fpga import PathFinderRouter, Placement
from repro.fpga.generators import scaled_suite
from repro.gan import (
    Pix2Pix,
    Pix2PixConfig,
    Pix2PixTrainer,
    image_congestion_score,
    per_pixel_accuracy,
)
from repro.gan.dataset import input_from_images
from repro.viz import render_connectivity, render_placement


@pytest.fixture(scope="module")
def bundle():
    spec = scaled_suite(SMOKE)[0]
    return build_design_bundle(spec, SMOKE, num_placements=4, seed=9)


class TestPipeline:
    def test_truth_images_encode_congestion_ordering(self, bundle):
        """The rendered ground truth must preserve the routed congestion
        ranking for distinctly separated placements — otherwise the Top10
        metric is meaningless.  (Near-ties inside the pixel-quantization
        noise floor are allowed to flip.)"""
        decoded = [
            image_congestion_score(s.y_image, bundle.channel_mask)
            for s in bundle.dataset
        ]
        truth = [min(s.true_congestion, 1.0) for s in bundle.dataset]
        for i in range(len(truth)):
            for j in range(len(truth)):
                if truth[i] - truth[j] > 0.015:
                    assert decoded[i] > decoded[j], (i, j)
        # And the decode itself is tight.
        for d, t in zip(decoded, truth):
            assert d == pytest.approx(t, abs=0.01)

    def test_model_trains_on_bundle(self, bundle):
        model = Pix2Pix(Pix2PixConfig.from_scale(
            SMOKE, image_size=bundle.layout.image_size, seed=1))
        trainer = Pix2PixTrainer(model, seed=1)
        history = trainer.fit(bundle.dataset, epochs=3)
        assert history.g_l1[-1] < history.g_l1[0]

    def test_forecast_pipeline_from_raw_placement(self, bundle):
        """Inference path used by the real-time application: render a fresh
        placement and push it through the generator."""
        placement = Placement.random(bundle.netlist, bundle.arch,
                                     np.random.default_rng(123))
        place_image = render_placement(placement, bundle.layout)
        connect = render_connectivity(bundle.netlist, placement,
                                      bundle.layout)
        x = input_from_images(place_image, connect,
                              SMOKE.connect_weight)
        model = Pix2Pix(Pix2PixConfig.from_scale(
            SMOKE, image_size=bundle.layout.image_size))
        forecast = model.generate(x)
        assert forecast.shape == (1, 3, bundle.layout.image_size,
                                  bundle.layout.image_size)

    def test_routing_ground_truth_is_reproducible(self, bundle):
        """Same placement, same router -> identical utilization map."""
        placement = bundle.placements[0]
        a = PathFinderRouter(bundle.netlist, bundle.arch, placement).route()
        b = PathFinderRouter(bundle.netlist, bundle.arch, placement).route()
        np.testing.assert_array_equal(a.occupancy, b.occupancy)

    def test_accuracy_of_truth_vs_itself_is_one(self, bundle):
        sample = bundle.dataset[0]
        assert per_pixel_accuracy(sample.y_image, sample.y_image) == 1.0

    def test_input_contains_placement_and_connectivity(self, bundle):
        """x = stack(img_place, lambda * img_connect): RGB channels carry the
        placement structure, channel 3 the connectivity."""
        sample = bundle.dataset[0]
        place_rgb = sample.x[:3]
        connect = sample.x[3]
        assert place_rgb.std() > 0.05
        # Connectivity channel is bounded by lambda.
        assert np.abs(connect).max() <= SMOKE.connect_weight + 1e-6
