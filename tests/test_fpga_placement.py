"""Placement container, cost models, and annealer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import (
    BlockType,
    DesignSpec,
    Placement,
    PlacerOptions,
    SimulatedAnnealingPlacer,
    generate_design,
    hpwl_cost,
    paper_architecture,
)
from repro.fpga.arch import Site
from repro.fpga.placement import (
    BoundingBoxCost,
    CongestionAwareCost,
    CriticalityCost,
    crossing_count,
    make_cost_model,
)


@pytest.fixture(scope="module")
def small_design():
    spec = DesignSpec("small", 60, 20, 200)
    return generate_design(spec, cluster_size=4, seed=3)


@pytest.fixture(scope="module")
def arch(small_design):
    from repro.fpga.generators import minimum_architecture_size

    return paper_architecture(minimum_architecture_size(small_design))


class TestCrossingCount:
    def test_small_nets_uncorrected(self):
        assert crossing_count(2) == 1.0
        assert crossing_count(3) == 1.0

    def test_monotone_nondecreasing(self):
        values = [crossing_count(t) for t in range(1, 80)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_extrapolation_beyond_table(self):
        assert crossing_count(60) == pytest.approx(2.7933 + 0.02616 * 10)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            crossing_count(-1)


class TestPlacement:
    def test_random_placement_is_legal(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        placement.validate()  # raises on violation

    def test_move_updates_all_stores(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        clb = small_design.blocks_of_type(BlockType.CLB)[0]
        free = next(site for site in arch.clb_sites
                    if placement.occupant(site) is None)
        placement.move(clb.id, free)
        assert placement.site_of[clb.id] == free
        assert placement.xs[clb.id] == free.x
        assert placement.x_list[clb.id] == free.x
        assert placement.occupant(free) == clb.id

    def test_move_to_occupied_raises(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        clbs = small_design.blocks_of_type(BlockType.CLB)
        target = placement.site_of[clbs[1].id]
        with pytest.raises(ValueError, match="occupied"):
            placement.move(clbs[0].id, target)

    def test_swap_is_involutive(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        clbs = small_design.blocks_of_type(BlockType.CLB)
        a, b = clbs[0].id, clbs[1].id
        before = (placement.site_of[a], placement.site_of[b])
        placement.swap(a, b)
        placement.swap(a, b)
        assert (placement.site_of[a], placement.site_of[b]) == before
        placement.validate()

    def test_copy_is_independent(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        clone = placement.copy()
        clb = small_design.blocks_of_type(BlockType.CLB)[0]
        free = next(site for site in arch.clb_sites
                    if placement.occupant(site) is None)
        placement.move(clb.id, free)
        assert clone.site_of[clb.id] != placement.site_of[clb.id]

    def test_io_fill_fraction(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        io_block = small_design.blocks_of_type(BlockType.IO)[0]
        site = placement.site_of[io_block.id]
        assert placement.io_fill_fraction(site.x, site.y) >= 1 / arch.io_capacity

    def test_double_booked_site_rejected(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(0))
        sites = list(placement.site_of)
        clbs = small_design.blocks_of_type(BlockType.CLB)
        sites[clbs[1].id] = sites[clbs[0].id]
        with pytest.raises(ValueError, match="double-booked"):
            Placement(small_design, arch, sites)


class TestCostModels:
    def test_hpwl_zero_when_colocated(self):
        # Two blocks on adjacent tiles: bbox spans are tiny but non-negative.
        spec = DesignSpec("mini", 8, 2, 20)
        netlist = generate_design(spec, cluster_size=4, seed=0)
        # Width 8 guarantees both a memory and a multiplier column exist.
        arch = paper_architecture(8)
        placement = Placement.random(netlist, arch, np.random.default_rng(1))
        assert hpwl_cost(netlist, placement) >= 0.0

    def test_net_cost_matches_manual_bbox(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(2))
        model = BoundingBoxCost(small_design, arch)
        net = small_design.nets[0]
        xs = placement.xs[list(net.terminals)]
        ys = placement.ys[list(net.terminals)]
        expected = crossing_count(net.fanout + 1) * (
            (xs.max() - xs.min()) + (ys.max() - ys.min()))
        assert model.net_cost(0, placement) == pytest.approx(float(expected))

    def test_total_is_sum_of_net_costs(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(2))
        model = BoundingBoxCost(small_design, arch)
        manual = sum(model.net_cost(n.id, placement)
                     for n in small_design.nets)
        assert model.total(placement) == pytest.approx(manual)

    def test_congestion_cost_at_least_bbox(self, small_design, arch):
        placement = Placement.random(small_design, arch,
                                     np.random.default_rng(2))
        bbox = BoundingBoxCost(small_design, arch)
        congestion = CongestionAwareCost(small_design, arch)
        congestion.refresh(placement)
        assert congestion.total(placement) >= bbox.total(placement) - 1e-9

    def test_criticality_weights_span_dependent(self, small_design, arch):
        model = CriticalityCost(small_design, arch)
        assert model.weights.min() >= 1.0
        assert model.weights.max() > 1.0  # some nets cross levels

    def test_factory_rejects_unknown(self, small_design, arch):
        with pytest.raises(ValueError, match="unknown place_algorithm"):
            make_cost_model("gradient_descent", small_design, arch)


class TestAnnealer:
    def test_improves_cost(self, small_design, arch):
        placer = SimulatedAnnealingPlacer(small_design, arch,
                                          PlacerOptions(seed=5))
        result = placer.place()
        assert result.final_cost < result.initial_cost
        assert result.improvement > 0.2  # SA should cut HPWL substantially

    def test_result_placement_is_legal(self, small_design, arch):
        result = SimulatedAnnealingPlacer(
            small_design, arch, PlacerOptions(seed=5)).place()
        result.placement.validate()

    def test_deterministic_per_seed(self, small_design, arch):
        a = SimulatedAnnealingPlacer(small_design, arch,
                                     PlacerOptions(seed=9)).place()
        b = SimulatedAnnealingPlacer(small_design, arch,
                                     PlacerOptions(seed=9)).place()
        assert a.final_cost == pytest.approx(b.final_cost)
        assert a.placement.site_of == b.placement.site_of

    def test_seed_changes_result(self, small_design, arch):
        a = SimulatedAnnealingPlacer(small_design, arch,
                                     PlacerOptions(seed=1)).place()
        b = SimulatedAnnealingPlacer(small_design, arch,
                                     PlacerOptions(seed=2)).place()
        assert a.placement.site_of != b.placement.site_of

    def test_fixed_alpha_t_cools_faster_with_lower_alpha(self, small_design,
                                                         arch):
        fast = SimulatedAnnealingPlacer(
            small_design, arch,
            PlacerOptions(seed=3, alpha_t=0.5)).place()
        slow = SimulatedAnnealingPlacer(
            small_design, arch,
            PlacerOptions(seed=3, alpha_t=0.95)).place()
        assert len(fast.temperatures) < len(slow.temperatures)

    def test_inner_num_scales_moves(self, small_design, arch):
        small = SimulatedAnnealingPlacer(
            small_design, arch,
            PlacerOptions(seed=3, alpha_t=0.6, inner_num=0.25)).place()
        large = SimulatedAnnealingPlacer(
            small_design, arch,
            PlacerOptions(seed=3, alpha_t=0.6, inner_num=1.0)).place()
        assert large.num_moves > small.num_moves

    @pytest.mark.parametrize("algorithm", [
        "bounding_box", "congestion_driven", "criticality"])
    def test_all_place_algorithms_run(self, small_design, arch, algorithm):
        options = PlacerOptions(seed=4, alpha_t=0.5, inner_num=0.25,
                                place_algorithm=algorithm)
        result = SimulatedAnnealingPlacer(small_design, arch, options).place()
        result.placement.validate()
        assert result.final_cost <= result.initial_cost

    def test_snapshot_callback_streams_placements(self, small_design, arch):
        snapshots = []
        placer = SimulatedAnnealingPlacer(
            small_design, arch, PlacerOptions(seed=3, alpha_t=0.5,
                                              inner_num=0.25))
        placer.place(snapshot_callback=lambda i, t, p: snapshots.append((i, t)))
        assert len(snapshots) >= 2
        temperatures = [t for _, t in snapshots]
        assert all(b <= a for a, b in zip(temperatures, temperatures[1:]))

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_annealing_never_breaks_legality(self, small_design, arch, seed):
        options = PlacerOptions(seed=seed, alpha_t=0.5, inner_num=0.2,
                                max_temperatures=10)
        result = SimulatedAnnealingPlacer(small_design, arch, options).place()
        result.placement.validate()
