"""Exact-resume tests: interrupt mid-epoch, resume, compare bitwise.

The acceptance bar of the run layer: a run stopped at an arbitrary step
and resumed from its checkpoint must end with final weights and a
``losses.jsonl`` byte-identical to a run that was never interrupted —
for the scratch (strategy-1) path and the fine-tune (strategy-2) path,
in both sample-order modes.
"""

import numpy as np
import pytest

from repro.data import ShardedStore
from repro.gan import Dataset
from repro.train import EvalSpec, FinetuneSpec, Runner, TrainSpec
from tests.conftest import make_dataset

SIZE = 16


@pytest.fixture(scope="module")
def full_dataset():
    base = make_dataset(5, size=SIZE, design="a")
    other = make_dataset(4, size=SIZE, design="b", seed0=40)
    return Dataset(list(base) + list(other))


def strategy2_spec(name: str) -> TrainSpec:
    """Scratch + fine-tune phases in the legacy shuffle order."""
    return TrainSpec(
        name=name, data="inline", scale="smoke", seed=3, epochs=3,
        order="shuffle", holdout_design="b",
        finetune=FinetuneSpec(epochs=2, pairs=2),
        eval=EvalSpec(every_epochs=2),
        checkpoint_every_steps=4,
        model={"base_filters": 4, "disc_filters": 4})


def stream_spec(name: str) -> TrainSpec:
    """Streaming order with augmentation (the store pipeline's plan)."""
    return TrainSpec(
        name=name, data="inline", scale="smoke", seed=5, epochs=3,
        order="stream", augment=True, batch_size=2, shard_size=3,
        checkpoint_every_steps=3,
        model={"base_filters": 4, "disc_filters": 4})


def assert_same_run(root, name_a: str, name_b: str) -> None:
    """losses.jsonl and exported weights must match bitwise."""
    bytes_a = (root / name_a / "losses.jsonl").read_bytes()
    bytes_b = (root / name_b / "losses.jsonl").read_bytes()
    assert bytes_a == bytes_b, "losses.jsonl diverged"
    with np.load(root / name_a / "export" / f"{name_a}.npz") as archive_a, \
            np.load(root / name_b / "export" / f"{name_b}.npz") as archive_b:
        keys_a = [k for k in archive_a.files if k != "config_json"]
        assert sorted(keys_a) == sorted(
            k for k in archive_b.files if k != "config_json")
        for key in keys_a:
            np.testing.assert_array_equal(archive_a[key], archive_b[key],
                                          err_msg=key)


class TestExactResumeShuffleOrder:
    """Strategy-2 run (scratch + fine-tune) in legacy shuffle order."""

    @pytest.fixture(scope="class")
    def runs(self, full_dataset, tmp_path_factory):
        root = tmp_path_factory.mktemp("resume-shuffle")
        Runner.create(strategy2_spec("straight"), root,
                      dataset=full_dataset).run()
        return root

    @pytest.mark.parametrize("stop_step, label", [
        (7, "mid-scratch-epoch"),       # epoch 2 of 3, step 2 of 5
        (15, "phase-boundary"),         # exactly at scratch-phase end
        (17, "mid-finetune-epoch"),     # inside the fine-tune phase
    ])
    def test_interrupt_and_resume_is_bitwise_identical(
            self, runs, full_dataset, stop_step, label):
        name = f"killed-{stop_step}"
        spec = strategy2_spec(name)
        interrupted = Runner.create(spec, runs, dataset=full_dataset).run(
            stop_after_steps=stop_step)
        assert interrupted.status == "interrupted"
        assert interrupted.global_step == stop_step
        resumed = Runner.resume(runs / name, dataset=full_dataset).run()
        assert resumed.completed
        assert_same_run(runs, "straight", name)

    def test_in_process_continuation_is_bitwise_identical(
            self, runs, full_dataset):
        """run() again on the same interrupted Runner object (no disk
        round-trip) must rewind the shuffle rng like a real resume."""
        spec = strategy2_spec("inproc")
        runner = Runner.create(spec, runs, dataset=full_dataset)
        assert runner.run(stop_after_steps=7).status == "interrupted"
        assert runner.run().completed
        assert_same_run(runs, "straight", "inproc")

    def test_double_interrupt_then_resume(self, runs, full_dataset):
        """Two kills at awkward steps still converge to the same run."""
        name = "killed-twice"
        spec = strategy2_spec(name)
        Runner.create(spec, runs, dataset=full_dataset).run(
            stop_after_steps=3)
        Runner.resume(runs / name, dataset=full_dataset).run(
            stop_after_steps=11)
        result = Runner.resume(runs / name, dataset=full_dataset).run()
        assert result.completed
        assert_same_run(runs, "straight", name)

    def test_eval_log_matches_too(self, runs, full_dataset):
        """evals.jsonl (fired at epoch boundaries) is also byte-stable."""
        eval_a = (runs / "straight" / "evals.jsonl").read_text()
        eval_b = (runs / "killed-7" / "evals.jsonl").read_text()
        assert eval_a == eval_b


class TestExactResumeStreamOrder:
    """Scratch run over the shard-aware loader plan with augmentation."""

    def test_interrupt_and_resume_is_bitwise_identical(
            self, tmp_path, full_dataset):
        Runner.create(stream_spec("straight"), tmp_path,
                      dataset=full_dataset).run()
        spec = stream_spec("killed")
        # 9 samples at batch 2 -> 5 batches/epoch; stop mid-epoch 2,
        # off the checkpoint_every_steps=3 grid (exercises truncation).
        Runner.create(spec, tmp_path, dataset=full_dataset).run(
            stop_after_steps=7)
        result = Runner.resume(tmp_path / "killed",
                               dataset=full_dataset).run()
        assert result.completed
        assert_same_run(tmp_path, "straight", "killed")

    def test_store_backed_streaming_resume(self, tmp_path, full_dataset):
        """A store: spec resumes from the spec.json alone (no dataset)."""
        store_root = tmp_path / "store"
        ShardedStore.from_dataset(store_root, full_dataset, shard_size=3)
        for name in ("straight", "killed"):
            spec = TrainSpec(
                name=name, data=f"store:{store_root}", scale="smoke",
                seed=5, epochs=2, order="stream", augment=True,
                batch_size=2, checkpoint_every_steps=3,
                model={"base_filters": 4, "disc_filters": 4})
            runner = Runner.create(spec, tmp_path)
            if name == "killed":
                runner.run(stop_after_steps=4)
                result = Runner.resume(tmp_path / name).run()
                assert result.completed
            else:
                runner.run()
        assert_same_run(tmp_path, "straight", "killed")


class TestResumeGuards:
    def test_resume_refuses_edited_spec(self, tmp_path, full_dataset):
        spec = stream_spec("guarded")
        Runner.create(spec, tmp_path, dataset=full_dataset).run(
            stop_after_steps=4)
        run_dir = tmp_path / "guarded"
        edited = TrainSpec.from_json(
            (run_dir / "spec.json").read_text()).to_dict()
        edited["epochs"] = 9
        (run_dir / "spec.json").write_text(
            TrainSpec.from_dict(edited).to_json())
        with pytest.raises(ValueError, match="spec"):
            Runner.resume(run_dir, dataset=full_dataset)

    def test_create_refuses_existing_run(self, tmp_path, full_dataset):
        spec = stream_spec("taken")
        Runner.create(spec, tmp_path, dataset=full_dataset)
        with pytest.raises(FileExistsError, match="resume"):
            Runner.create(spec, tmp_path, dataset=full_dataset)

    def test_resume_needs_a_run_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="spec.json"):
            Runner.resume(tmp_path / "nowhere")

    def test_resume_before_first_checkpoint_restarts_cleanly(
            self, tmp_path, full_dataset):
        spec = stream_spec("unckpted")
        runner = Runner.create(spec, tmp_path, dataset=full_dataset)
        # Simulate a crash before any checkpoint: stray partial log only.
        (tmp_path / "unckpted" / "losses.jsonl").write_text(
            '{"partial": true}\n')
        result = Runner.resume(tmp_path / "unckpted",
                               dataset=full_dataset).run()
        assert result.completed
        first_line = (tmp_path / "unckpted"
                      / "losses.jsonl").read_text().splitlines()[0]
        assert "partial" not in first_line
