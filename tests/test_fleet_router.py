"""Fleet router: byte identity, shared cache, admission, backpressure."""

import json
import time
import urllib.request

import numpy as np
import pytest

from tests.conftest import make_tiny_model
from repro.fleet import FleetBusyError, FleetRouter, ThreadWorker
from repro.serve import (
    BatchingEngine,
    ForecastCache,
    ForecastServer,
    ModelRegistry,
)


def _registry(model=None):
    registry = ModelRegistry()
    registry.register("tiny", model if model is not None
                      else make_tiny_model())
    return registry


def _thread_router(workers=2, **kwargs):
    built = [ThreadWorker(f"w{i}", _registry()) for i in range(workers)]
    return FleetRouter(built, _registry(), **kwargs)


class SlowModel:
    """Delegates everything to a real model, but forecasts slowly —
    pins requests in flight so saturation states are testable."""

    def __init__(self, inner, delay: float = 0.3):
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def forecast(self, x):
        time.sleep(self._delay)
        return self._inner.forecast(x)


@pytest.fixture()
def inputs():
    rng = np.random.default_rng(11)
    return [rng.normal(size=(4, 16, 16)).astype(np.float32)
            for _ in range(12)]


class TestByteIdentity:
    def test_four_workers_match_single_engine_shuffled(self, inputs):
        """The acceptance bar: a 4-worker fleet returns bit-identical
        forecasts to one engine, regardless of arrival order."""
        with BatchingEngine(_registry()) as engine:
            reference = [engine.forecast_result("tiny", x).image
                         for x in inputs]
        order = list(np.random.default_rng(5).permutation(len(inputs)))
        with _thread_router(workers=4) as router:
            futures = {index: router.submit("tiny", inputs[index],
                                            timeout=60.0)
                       for index in order}
            images = {index: future.result(60.0).image
                      for index, future in futures.items()}
        for index, expected in enumerate(reference):
            assert np.array_equal(images[index], expected)

    def test_process_workers_match_single_engine(self, tmp_path, inputs):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        model = make_tiny_model()
        model.save(ckpt / "tiny.npz")
        reference = [model.forecast(x) for x in inputs[:4]]
        router = FleetRouter.local(ckpt, workers=2, mode="process")
        with router:
            futures = [router.submit("tiny", x, timeout=120.0)
                       for x in inputs[:4]]
            images = [future.result(120.0).image for future in futures]
        for expected, image in zip(reference, images):
            assert np.array_equal(image, expected)


class TestSharedCache:
    def test_cache_hit_crosses_workers(self, inputs):
        cache = ForecastCache(32)
        with _thread_router(workers=2, cache=cache) as router:
            # Pin w0 so the miss computes on w1; the repeat request
            # would route to w0, but the shared cache answers first.
            router.workers[0]._depth = 99
            miss = router.forecast_result("tiny", inputs[0], timeout=30.0)
            router.workers[0]._depth = 0
            hit = router.forecast_result("tiny", inputs[0], timeout=30.0)
            stats = router.stats()
        assert miss.cached is False and hit.cached is True
        assert stats["routed_by_worker"] == {"w1": 1}
        assert cache.hits == 1
        assert np.array_equal(miss.image, hit.image)

    def test_cache_hit_counts_in_latency_not_routing(self, inputs):
        with _thread_router(workers=1, cache=ForecastCache(8)) as router:
            router.forecast_result("tiny", inputs[0])
            router.forecast_result("tiny", inputs[0])
            stats = router.stats()
        assert stats["requests"] == 2
        assert stats["completed"] == 2
        assert sum(stats["routed_by_worker"].values()) == 1


class TestSaturation:
    def _slow_router(self, **kwargs):
        registry = ModelRegistry()
        registry.register("tiny", SlowModel(make_tiny_model()))
        worker = ThreadWorker("w0", registry)
        return FleetRouter([worker], _registry(), **kwargs)

    def test_admission_control_rejects_beyond_max_inflight(self, inputs):
        with self._slow_router(max_inflight=2,
                               worker_queue_limit=64) as router:
            first = router.submit("tiny", inputs[0], timeout=30.0)
            second = router.submit("tiny", inputs[1], timeout=30.0)
            with pytest.raises(FleetBusyError, match="max_inflight") \
                    as rejected:
                router.submit("tiny", inputs[2], timeout=30.0)
            assert rejected.value.reason == "admission"
            first.result(30.0)
            second.result(30.0)
            # Capacity returns once the fleet drains.
            router.forecast_result("tiny", inputs[2], timeout=30.0)
            stats = router.stats()
        assert stats["rejected"] == {"admission": 1}

    def test_backpressure_rejects_on_deep_worker_queues(self, inputs):
        with self._slow_router(max_inflight=64,
                               worker_queue_limit=1) as router:
            pending = router.submit("tiny", inputs[0], timeout=30.0)
            with pytest.raises(FleetBusyError, match="queue") as rejected:
                router.submit("tiny", inputs[1], timeout=30.0)
            assert rejected.value.reason == "backpressure"
            pending.result(30.0)
            stats = router.stats()
        assert stats["rejected"] == {"backpressure": 1}

    def test_rejection_is_a_runtime_error(self):
        # The HTTP layer maps RuntimeError -> 503; saturation must
        # stay on that path.
        assert issubclass(FleetBusyError, RuntimeError)


class TestRouting:
    def test_concurrent_load_spreads_across_workers(self, inputs):
        with _thread_router(workers=3) as router:
            futures = [router.submit("tiny", x, timeout=60.0)
                       for x in inputs]
            for future in futures:
                future.result(60.0)
            routed = router.stats()["routed_by_worker"]
        assert sum(routed.values()) == len(inputs)
        assert len(routed) > 1           # more than one worker served

    def test_unknown_model_raises_keyerror(self, inputs):
        with _thread_router(workers=1) as router:
            with pytest.raises(KeyError):
                router.submit("nope", inputs[0])

    def test_wrong_shape_rejected(self):
        with _thread_router(workers=1) as router:
            with pytest.raises(ValueError, match="expects input shape"):
                router.submit("tiny", np.zeros((4, 8, 8), dtype=np.float32))

    def test_submit_requires_running_router(self, inputs):
        router = _thread_router(workers=1)
        with pytest.raises(RuntimeError, match="not running"):
            router.submit("tiny", inputs[0])

    def test_duplicate_worker_ids_rejected(self):
        workers = [ThreadWorker("w0", _registry()),
                   ThreadWorker("w0", _registry())]
        with pytest.raises(ValueError, match="duplicate"):
            FleetRouter(workers, _registry())


class TestHttpFront:
    def test_forecast_server_serves_a_fleet(self, inputs):
        router = _thread_router(workers=2, cache=ForecastCache(16))
        with ForecastServer(router, port=0) as server:
            body = json.dumps({"model": "tiny",
                               "input": inputs[0].tolist()}).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/forecast", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request) as response:
                first = json.loads(response.read())
            with urllib.request.urlopen(request) as response:
                second = json.loads(response.read())
            with urllib.request.urlopen(
                    f"{server.url}/fleet/status") as response:
                status = json.loads(response.read())
        assert first["cached"] is False and second["cached"] is True
        assert first["forecast"] == second["forecast"]
        assert status["stats"]["requests"] == 2
        assert [worker["id"] for worker in status["workers"]] \
            == ["w0", "w1"]
        assert status["models"] == ["tiny"]
        assert not router.running

    def test_fleet_status_404_on_single_engine(self, tiny_model):
        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        engine = BatchingEngine(registry)
        with ForecastServer(engine, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(f"{server.url}/fleet/status")
            assert failure.value.code == 404

    def test_prometheus_exposition_has_fleet_metrics(self, inputs):
        router = _thread_router(workers=1)
        with ForecastServer(router, port=0) as server:
            router.forecast_result("tiny", inputs[0])
            with urllib.request.urlopen(
                    f"{server.url}/metrics") as response:
                text = response.read().decode()
        assert "fleet_requests_total 1" in text
        assert "fleet_routed_total" in text


class TestLifecycle:
    def test_stop_is_idempotent_surface(self, inputs):
        router = _thread_router(workers=2)
        router.start()
        router.forecast_result("tiny", inputs[0])
        router.stop()
        assert not router.running
        assert all(not worker.alive for worker in router.workers)

    def test_start_twice_rejected(self):
        router = _thread_router(workers=1)
        with router:
            with pytest.raises(RuntimeError, match="already running"):
                router.start()

    def test_router_validates_limits(self):
        with pytest.raises(ValueError, match="max_inflight"):
            _thread_router(workers=1, max_inflight=0)
        with pytest.raises(ValueError, match="worker_queue_limit"):
            _thread_router(workers=1, worker_queue_limit=0)
        with pytest.raises(ValueError, match="at least one"):
            FleetRouter([], _registry())
