"""Micro-batching engine: equivalence, batching, caching, lifecycle."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve import BatchingEngine, ForecastCache, ModelRegistry


@pytest.fixture()
def registry(tiny_model):
    registry = ModelRegistry()
    registry.register("tiny", tiny_model)
    return registry


class TestEquivalence:
    def test_batched_engine_matches_per_sample_forecast(
            self, registry, tiny_model, tiny_inputs):
        """The acceptance bar: batched results are bitwise per-sample."""
        with BatchingEngine(registry, max_batch=8,
                            max_wait_ms=20.0) as engine:
            futures = [engine.submit("tiny", x) for x in tiny_inputs]
            results = [future.result(timeout=30.0) for future in futures]
        stats = engine.stats()
        assert stats["batches"] < len(tiny_inputs)   # batching actually happened
        assert stats["mean_batch_occupancy"] > 1.0
        for x, result in zip(tiny_inputs, results):
            expected = tiny_model.forecast(x)
            assert np.array_equal(result.image, expected)
            assert result.cached is False
            assert result.image.shape == (16, 16, 3)

    def test_pix2pix_forecast_batch_invariance(self, tiny_model, tiny_inputs):
        singles = np.stack([tiny_model.forecast(x) for x in tiny_inputs])
        batched = tiny_model.forecast(tiny_inputs)
        assert np.array_equal(batched, singles)

    def test_forecast_accepts_single_and_batch_shapes(self, tiny_model):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 16, 16)).astype(np.float32)
        assert tiny_model.forecast(x).shape == (16, 16, 3)
        assert tiny_model.forecast(x[None]).shape == (1, 16, 16, 3)
        with pytest.raises(ValueError, match="expected"):
            tiny_model.forecast(x[0])


class TestBatching:
    def test_max_batch_respected(self, registry, tiny_inputs):
        with BatchingEngine(registry, max_batch=4,
                            max_wait_ms=50.0) as engine:
            futures = [engine.submit("tiny", x) for x in tiny_inputs]
            for future in futures:
                future.result(timeout=30.0)
        assert engine.stats()["max_batch_occupancy"] <= 4

    def test_zero_wait_serves_immediately(self, registry, tiny_inputs):
        with BatchingEngine(registry, max_batch=8,
                            max_wait_ms=0.0) as engine:
            result = engine.forecast_result("tiny", tiny_inputs[0],
                                            timeout=30.0)
        assert result.cached is False

    def test_concurrent_submitters(self, registry, tiny_model, tiny_inputs):
        results: list = [None] * len(tiny_inputs)

        def submit(index: int) -> None:
            results[index] = engine.forecast("tiny", tiny_inputs[index],
                                             timeout=30.0)

        with BatchingEngine(registry, max_batch=6,
                            max_wait_ms=10.0) as engine:
            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(len(tiny_inputs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for index, image in enumerate(results):
            assert np.array_equal(image,
                                  tiny_model.forecast(tiny_inputs[index]))


class TestCachePath:
    def test_results_read_only_on_both_paths(self, registry, tiny_inputs):
        cache = ForecastCache(16)
        with BatchingEngine(registry, max_batch=4, max_wait_ms=0.0,
                            cache=cache) as engine:
            miss = engine.forecast_result("tiny", tiny_inputs[0])
            hit = engine.forecast_result("tiny", tiny_inputs[0])
        for result in (miss, hit):
            with pytest.raises(ValueError):
                result.image[0, 0, 0] = 1.0
        # The cached copy must not alias the miss-path array.
        assert miss.image is not hit.image

    def test_repeat_requests_hit_cache(self, registry, tiny_inputs):
        cache = ForecastCache(16)
        with BatchingEngine(registry, max_batch=4, max_wait_ms=0.0,
                            cache=cache) as engine:
            first = engine.forecast_result("tiny", tiny_inputs[0])
            again = engine.forecast_result("tiny", tiny_inputs[0])
        assert first.cached is False
        assert again.cached is True
        assert cache.hits == 1
        assert np.array_equal(first.image, again.image)

    def test_cache_hit_skips_the_queue(self, registry, tiny_inputs):
        cache = ForecastCache(16)
        with BatchingEngine(registry, max_batch=4, max_wait_ms=0.0,
                            cache=cache) as engine:
            engine.forecast("tiny", tiny_inputs[0])
            batches_before = engine.stats()["batches"]
            hit = engine.submit("tiny", tiny_inputs[0])
            assert hit.done()            # resolved synchronously
            assert engine.stats()["batches"] == batches_before


class TestValidationAndLifecycle:
    def test_unknown_model_rejected_at_submit(self, registry, tiny_inputs):
        with BatchingEngine(registry) as engine:
            with pytest.raises(KeyError, match="tiny"):
                engine.submit("nope", tiny_inputs[0])

    def test_wrong_shape_rejected_at_submit(self, registry):
        with BatchingEngine(registry) as engine:
            with pytest.raises(ValueError, match="expects input shape"):
                engine.submit("tiny", np.zeros((4, 8, 8), dtype=np.float32))

    def test_submit_requires_running_engine(self, registry, tiny_inputs):
        engine = BatchingEngine(registry)
        with pytest.raises(RuntimeError, match="not running"):
            engine.submit("tiny", tiny_inputs[0])

    def test_stop_drains_and_stops(self, registry, tiny_inputs):
        engine = BatchingEngine(registry, max_batch=2, max_wait_ms=0.0)
        engine.start()
        futures = [engine.submit("tiny", x) for x in tiny_inputs]
        engine.stop()
        assert not engine.running
        settled = [f for f in futures if f.done()]
        assert settled  # at least the first batch ran
        for future in settled:
            if future.exception() is None:
                assert future.result().image.shape == (16, 16, 3)

    def test_stats_counters_consistent(self, registry, tiny_inputs):
        with BatchingEngine(registry, max_batch=4,
                            max_wait_ms=5.0) as engine:
            for x in tiny_inputs[:6]:
                engine.forecast("tiny", x, timeout=30.0)
            stats = engine.stats()
        assert stats["requests"] == 6
        assert stats["completed"] == 6
        assert stats["batched_requests"] == 6
        assert stats["mean_latency_ms"] > 0
        assert stats["forward_seconds_total"] > 0

    def test_bad_parameters_rejected(self, registry):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingEngine(registry, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchingEngine(registry, max_wait_ms=-1.0)

    def test_future_type(self, registry, tiny_inputs):
        with BatchingEngine(registry) as engine:
            future = engine.submit("tiny", tiny_inputs[0])
            assert isinstance(future, Future)
            future.result(timeout=30.0)


class TestMultiModel:
    def test_mixed_batch_routes_to_both_models(self, tiny_model,
                                               tiny_inputs, make_model):
        other = make_model(seed=9)
        registry = ModelRegistry()
        registry.register("a", tiny_model)
        registry.register("b", other)
        with BatchingEngine(registry, max_batch=8,
                            max_wait_ms=20.0) as engine:
            futures = [engine.submit("a" if i % 2 else "b", x)
                       for i, x in enumerate(tiny_inputs[:8])]
            results = [f.result(timeout=30.0) for f in futures]
        for i, (x, result) in enumerate(zip(tiny_inputs[:8], results)):
            expected = (tiny_model if i % 2 else other).forecast(x)
            assert np.array_equal(result.image, expected)


class TestObservability:
    def test_batch_occupancy_histogram(self, registry, tiny_inputs):
        with BatchingEngine(registry, max_batch=1,
                            max_wait_ms=0.0) as engine:
            for x in tiny_inputs[:3]:
                engine.forecast("tiny", x, timeout=30.0)
            stats = engine.stats()
        histogram = stats["batch_occupancy_histogram"]
        assert histogram == {"1": 3}
        assert sum(int(size) * count
                   for size, count in histogram.items()) \
            == stats["batched_requests"]

    def test_histogram_counts_larger_batches(self, registry, tiny_inputs):
        with BatchingEngine(registry, max_batch=8,
                            max_wait_ms=50.0) as engine:
            futures = [engine.submit("tiny", x) for x in tiny_inputs[:6]]
            for future in futures:
                future.result(timeout=30.0)
            stats = engine.stats()
        histogram = stats["batch_occupancy_histogram"]
        assert sum(int(size) * count
                   for size, count in histogram.items()) == 6
        assert any(int(size) > 1 for size in histogram)

    def test_cache_hit_miss_counters(self, registry, tiny_inputs):
        cache = ForecastCache(capacity=8)
        with BatchingEngine(registry, max_batch=2, max_wait_ms=0.0,
                            cache=cache) as engine:
            engine.forecast("tiny", tiny_inputs[0], timeout=30.0)  # miss
            engine.forecast("tiny", tiny_inputs[0], timeout=30.0)  # hit
            engine.forecast("tiny", tiny_inputs[1], timeout=30.0)  # miss
            stats = engine.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 2
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 2

    def test_counters_zero_without_cache(self, registry, tiny_inputs):
        with BatchingEngine(registry, max_wait_ms=0.0) as engine:
            engine.forecast("tiny", tiny_inputs[0], timeout=30.0)
            stats = engine.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 0
        assert "cache" not in stats


class _SlowForecast:
    """Delegates to a real model but sleeps per forward — lets tests
    park requests in the queue long enough to expire or race stop."""

    def __init__(self, inner, delay: float = 0.2):
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def forecast(self, x):
        time.sleep(self._delay)
        return self._inner.forecast(x)


class TestShutdownRaces:
    def test_submit_vs_stop_no_hung_futures(self, registry, tiny_inputs):
        """Regression: submit racing stop used to enqueue after the
        worker exited, leaving futures that never resolved.  Every
        accepted future must be settled once stop() returns; late
        arrivals must be rejected loudly, never parked."""
        x = tiny_inputs[0]
        for _ in range(200):
            engine = BatchingEngine(registry, max_batch=4,
                                    max_wait_ms=0.0)
            engine.start()
            accepted: list = []
            rejected = threading.Event()

            def submit_until_rejected():
                while True:
                    try:
                        accepted.append(engine.submit("tiny", x))
                    except RuntimeError:
                        rejected.set()
                        return

            submitter = threading.Thread(target=submit_until_rejected)
            submitter.start()
            engine.stop()
            submitter.join(timeout=30.0)
            assert not submitter.is_alive()
            assert rejected.is_set()     # the race ended in a clean reject
            for future in accepted:
                assert future.done()     # settled: result or exception
                if future.exception() is not None:
                    assert isinstance(future.exception(), TimeoutError)

    def test_submit_after_stop_rejected(self, registry, tiny_inputs):
        engine = BatchingEngine(registry)
        engine.start()
        engine.stop()
        with pytest.raises(RuntimeError, match="not running"):
            engine.submit("tiny", tiny_inputs[0])


class TestDeadlines:
    def test_expired_requests_dropped_not_served(self, tiny_model,
                                                 tiny_inputs):
        """Regression: requests whose caller had already timed out still
        burned batch slots.  Expired entries must fail fast with
        TimeoutError and count in the expired metric."""
        registry = ModelRegistry()
        registry.register("tiny", _SlowForecast(tiny_model, delay=0.3))
        with BatchingEngine(registry, max_batch=1,
                            max_wait_ms=0.0) as engine:
            blocker = engine.submit("tiny", tiny_inputs[0])
            time.sleep(0.05)             # let the worker take the blocker
            doomed = [engine.submit("tiny", x, timeout=0.05)
                      for x in tiny_inputs[1:4]]
            blocker.result(timeout=30.0)
            # The doomed requests expired while the blocker held the
            # worker; the next batch pass drops them unserved.
            for future in doomed:
                with pytest.raises(TimeoutError, match="expired"):
                    future.result(timeout=30.0)
            stats = engine.stats()
        assert stats["expired"] == 3
        # Dropped requests never reached a forward pass.
        assert stats["batched_requests"] == 1

    def test_requests_within_deadline_served_normally(self, registry,
                                                      tiny_inputs):
        with BatchingEngine(registry, max_wait_ms=0.0) as engine:
            result = engine.forecast_result("tiny", tiny_inputs[0],
                                            timeout=30.0)
        assert result.image.shape == (16, 16, 3)
        assert engine.stats()["expired"] == 0


class TestModelCacheLocking:
    def test_concurrent_first_lookups_are_consistent(self, tiny_model,
                                                     make_model,
                                                     tiny_inputs):
        """Regression: _model_cache was a plain dict mutated by every
        submitter thread; concurrent first-time lookups could tear.
        Hammer cold lookups from many threads and check every result."""
        other = make_model(seed=9)
        registry = ModelRegistry()
        registry.register("a", tiny_model)
        registry.register("b", other)
        with BatchingEngine(registry, max_batch=8,
                            max_wait_ms=5.0) as engine:
            futures: list = [None] * 16

            def submit(index):
                model_id = "a" if index % 2 else "b"
                futures[index] = engine.submit(model_id,
                                               tiny_inputs[index % 12])

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=30.0) for future in futures]
        for index, result in enumerate(results):
            expected = (tiny_model if index % 2 else other).forecast(
                tiny_inputs[index % 12])
            assert np.array_equal(result.image, expected)
