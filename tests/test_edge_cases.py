"""Edge cases and failure injection across module boundaries.

These tests target the seams: corrupted artifacts, degenerate sizes,
exhausted resources — the places where a production tool must fail loudly
instead of producing silently wrong experiment data.
"""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.fpga import (
    Block,
    BlockType,
    DesignSpec,
    Net,
    Netlist,
    PathFinderRouter,
    Placement,
    PlacerOptions,
    RouterOptions,
    SimulatedAnnealingPlacer,
    generate_design,
    paper_architecture,
)
from repro.fpga.arch import FpgaArchitecture, Site
from repro.gan import Dataset, Pix2Pix, Pix2PixConfig, Pix2PixTrainer


class TestDatasetCorruption:
    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Dataset.load(tmp_path / "nope.npz")

    def test_load_truncated_file_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 not a real zip")
        with pytest.raises(Exception):
            Dataset.load(path)

    def test_load_wrong_archive_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(KeyError):
            Dataset.load(path)


class TestDegenerateNetlists:
    def test_single_net_design_routes(self):
        blocks = [Block(0, "in", BlockType.IO), Block(1, "c", BlockType.CLB)]
        nets = [Net(0, "n", 0, (1,))]
        netlist = Netlist("one", blocks, nets)
        arch = paper_architecture(4, channel_width=4)
        placement = Placement(netlist, arch, [Site(0, 1, 0), Site(1, 1)])
        result = PathFinderRouter(netlist, arch, placement).route()
        assert result.converged
        assert result.wirelength >= 1

    def test_netlist_with_no_nets_places(self):
        blocks = [Block(0, "c", BlockType.CLB)]
        netlist = Netlist("empty", blocks, [])
        arch = paper_architecture(4, channel_width=4)
        placer = SimulatedAnnealingPlacer(
            netlist, arch, PlacerOptions(seed=1, alpha_t=0.5,
                                         max_temperatures=3))
        result = placer.place()
        assert result.final_cost == 0.0
        result.placement.validate()

    def test_netlist_with_no_nets_routes_empty(self):
        blocks = [Block(0, "c", BlockType.CLB)]
        netlist = Netlist("empty", blocks, [])
        arch = paper_architecture(4, channel_width=4)
        placement = Placement(netlist, arch, [Site(1, 1)])
        result = PathFinderRouter(netlist, arch, placement).route()
        assert result.converged
        assert result.wirelength == 0

    def test_design_larger_than_architecture_rejected(self):
        spec = DesignSpec("big", 400, 100, 900)
        netlist = generate_design(spec, cluster_size=4, seed=0)
        arch = paper_architecture(4)  # far too small
        with pytest.raises(ValueError, match="sites"):
            Placement.random(netlist, arch, np.random.default_rng(0))


class TestRouterStress:
    def test_capacity_one_reports_overflow_not_crash(self):
        spec = DesignSpec("tight", 40, 10, 140)
        netlist = generate_design(spec, cluster_size=4, seed=2)
        from repro.fpga.generators import minimum_architecture_size

        width = minimum_architecture_size(netlist)
        arch = paper_architecture(width, channel_width=1)
        placement = Placement.random(netlist, arch,
                                     np.random.default_rng(1))
        result = PathFinderRouter(
            netlist, arch, placement,
            options=RouterOptions(max_iterations=3)).route()
        # Must terminate with honest overuse accounting either way.
        assert result.iterations <= 3
        if not result.converged:
            assert result.overuse > 0
        total_tree = sum(len(t) for t in result.net_trees.values())
        assert total_tree == result.occupancy.sum()

    def test_zero_history_single_iteration_is_pure_shortest_path(self):
        spec = DesignSpec("sp", 30, 8, 90)
        netlist = generate_design(spec, cluster_size=4, seed=3)
        from repro.fpga.generators import minimum_architecture_size

        arch = paper_architecture(minimum_architecture_size(netlist),
                                  channel_width=100)
        placement = Placement.random(netlist, arch,
                                     np.random.default_rng(2))
        a = PathFinderRouter(netlist, arch, placement,
                             options=RouterOptions(max_iterations=1)).route()
        b = PathFinderRouter(netlist, arch, placement,
                             options=RouterOptions(max_iterations=1)).route()
        np.testing.assert_array_equal(a.occupancy, b.occupancy)


class TestModelEdges:
    def test_trainer_rejects_inconsistent_image_sizes(self):
        model = Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                      disc_filters=4))
        trainer = Pix2PixTrainer(model)
        from tests.conftest import make_sample

        wrong = Dataset([make_sample(size=32)])
        with pytest.raises(ValueError):
            trainer.fit(wrong, epochs=1)

    def test_minimum_unet_size(self):
        model = Pix2Pix(Pix2PixConfig(image_size=8, base_filters=2,
                                      disc_filters=2))
        x = np.zeros((1, 4, 8, 8), dtype=np.float32)
        assert model.generate(x).shape == (1, 3, 8, 8)

    def test_non_power_of_two_image_rejected(self):
        with pytest.raises(ValueError):
            Pix2Pix(Pix2PixConfig(image_size=48, base_filters=4,
                                  disc_filters=4))

    def test_batch_of_two_supported(self):
        """The paper uses batch 1, but the framework must not hard-code it."""
        model = Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                      disc_filters=4))
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 4, 16, 16)).astype(np.float32)
        y = np.tanh(rng.normal(size=(2, 3, 16, 16))).astype(np.float32)
        losses = model.train_step(x, y)
        assert np.isfinite(losses.g_total)
        assert model.generate(x).shape == (2, 3, 16, 16)


class TestArchitectureEdges:
    def test_minimum_grid(self):
        arch = FpgaArchitecture(3, 3)
        assert arch.capacity(BlockType.CLB) == 9
        assert len(arch.io_sites) == 12 * arch.io_capacity

    def test_rectangular_grid(self):
        arch = FpgaArchitecture(6, 3, mem_columns=(3,))
        assert arch.capacity(BlockType.CLB) == 5 * 3
        from repro.fpga.router import ChannelGraph

        graph = ChannelGraph(arch)
        assert graph.num_h == 6 * 4
        assert graph.num_v == 7 * 3

    def test_tall_macro_fills_column(self):
        arch = FpgaArchitecture(5, 4, mem_columns=(2,), mem_height=4)
        assert [site.y for site in arch.mem_sites] == [1]

    def test_io_capacity_one(self):
        arch = FpgaArchitecture(4, 4, io_capacity=1)
        assert len(arch.io_sites) == 16
        assert arch.compatible(BlockType.IO, Site(0, 1, 0))
        assert not arch.compatible(BlockType.IO, Site(0, 1, 1))
