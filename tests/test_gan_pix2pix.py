"""Adversarial training-step tests (Section 4.4 / Figure 6)."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.gan import Pix2Pix, Pix2PixConfig


@pytest.fixture
def model():
    return Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                 disc_filters=4, seed=3))


@pytest.fixture
def batch():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
    y = np.tanh(rng.normal(size=(1, 3, 16, 16))).astype(np.float32)
    return x, y


class TestConfig:
    def test_paper_defaults(self):
        config = Pix2PixConfig()
        assert config.l1_weight == 50.0        # paper: L1 weight 50
        assert config.learning_rate == 2e-4    # paper: 0.0002
        assert config.adam_beta1 == 0.5
        assert config.adam_beta2 == 0.999
        assert config.adam_eps == 1e-8
        assert config.image_size == 256
        assert config.input_channels == 4      # img_place + lambda*connect

    def test_from_scale(self):
        config = Pix2PixConfig.from_scale(SMOKE)
        assert config.image_size == SMOKE.image_size
        assert config.base_filters == SMOKE.base_filters

    def test_from_scale_overrides(self):
        config = Pix2PixConfig.from_scale(SMOKE, skip_mode="none",
                                          l1_weight=0.0)
        assert config.skip_mode == "none"
        assert config.l1_weight == 0.0


class TestTrainStep:
    def test_returns_all_losses(self, model, batch):
        losses = model.train_step(*batch)
        for value in (losses.d_real, losses.d_fake, losses.g_gan,
                      losses.g_l1):
            assert np.isfinite(value)
        assert losses.d_total == pytest.approx(
            0.5 * (losses.d_real + losses.d_fake))
        assert losses.g_total == pytest.approx(losses.g_gan + losses.g_l1)

    def test_updates_both_networks(self, model, batch):
        g_before = model.generator.state_dict()
        d_before = model.discriminator.state_dict()
        model.train_step(*batch)
        g_changed = any(
            not np.array_equal(g_before[k], v)
            for k, v in model.generator.state_dict().items()
            if not k.endswith(("running_mean", "running_var")))
        d_changed = any(
            not np.array_equal(d_before[k], v)
            for k, v in model.discriminator.state_dict().items()
            if not k.endswith(("running_mean", "running_var")))
        assert g_changed and d_changed

    def test_l1_loss_decreases_when_overfitting(self, model, batch):
        x, y = batch
        first = model.train_step(x, y).g_l1
        for _ in range(30):
            last = model.train_step(x, y).g_l1
        assert last < first

    def test_zero_l1_weight_disables_l1_term(self, batch):
        model = Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                      disc_filters=4, l1_weight=0.0))
        losses = model.train_step(*batch)
        assert losses.g_l1 == 0.0

    def test_d_grads_cleared_after_g_step(self, model, batch):
        model.train_step(*batch)
        for param in model.discriminator.parameters():
            np.testing.assert_array_equal(param.grad, 0.0)

    def test_losses_reflect_adversarial_game(self, model, batch):
        """After D catches up, fake logits drop: d_fake < initial."""
        x, y = batch
        first = model.train_step(x, y)
        for _ in range(15):
            last = model.train_step(x, y)
        # The discriminator should have learned *something* about the pair.
        assert last.d_total < first.d_total + 1.0  # sanity: no divergence
        assert np.isfinite(last.g_total)


class TestGenerate:
    def test_output_shape_and_range(self, model, batch):
        x, _ = batch
        out = model.generate(x)
        assert out.shape == (1, 3, 16, 16)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_noise_sampling_toggle(self, model, batch):
        x, _ = batch
        a = model.generate(x, sample_noise=True)
        b = model.generate(x, sample_noise=True)
        assert not np.allclose(a, b)
        c = model.generate(x, sample_noise=False)
        d = model.generate(x, sample_noise=False)
        np.testing.assert_allclose(c, d)

    def test_generate_restores_training_mode(self, model, batch):
        x, _ = batch
        model.generate(x, sample_noise=False)
        assert model.generator.training
