"""TrainSpec tests: JSON round-trip, validation, scale capture."""

import pytest

from repro.config import SMOKE, custom_scale
from repro.train import EvalSpec, FinetuneSpec, TrainSpec, describe_scale


def full_spec() -> TrainSpec:
    return TrainSpec(
        name="full",
        data="store:/tmp/some-store",
        scale="smoke",
        seed=7,
        epochs=4,
        batch_size=2,
        order="stream",
        augment=True,
        shard_size=8,
        holdout_design="ode",
        model={"skip_mode": "single", "l1_weight": 10.0},
        scale_overrides={"epochs": 9},
        finetune=FinetuneSpec(epochs=2, pairs=3, lr_scale=0.5),
        eval=EvalSpec(every_epochs=2, batch_size=4),
        checkpoint_every_steps=5,
        keep_checkpoints=2,
        publish=False,
    )


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = full_spec()
        assert TrainSpec.from_json(spec.to_json()) == spec

    def test_minimal_round_trip(self):
        spec = TrainSpec(name="mini")
        assert TrainSpec.from_json(spec.to_json()) == spec
        assert spec.finetune is None and spec.eval is None

    def test_save_load_file(self, tmp_path):
        spec = full_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert TrainSpec.load(path) == spec

    def test_nested_specs_rehydrate_as_dataclasses(self):
        spec = TrainSpec.from_json(full_spec().to_json())
        assert isinstance(spec.finetune, FinetuneSpec)
        assert isinstance(spec.eval, EvalSpec)


class TestValidation:
    def test_unknown_field_fails_loudly(self):
        with pytest.raises(ValueError, match="epohcs"):
            TrainSpec.from_dict({"name": "x", "epohcs": 3})

    def test_unknown_nested_field_fails_loudly(self):
        with pytest.raises(ValueError, match="pears"):
            TrainSpec.from_dict({"name": "x", "finetune": {"pears": 2},
                                 "holdout_design": "d"})

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            TrainSpec(name="x", order="chaotic")

    def test_shuffle_order_requires_batch_one(self):
        with pytest.raises(ValueError, match="batch"):
            TrainSpec(name="x", order="shuffle", batch_size=4)

    def test_bad_data_ref_rejected(self):
        with pytest.raises(ValueError, match="data ref"):
            TrainSpec(name="x", data="database:/tmp/x")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            TrainSpec(name="a/b")

    def test_unknown_scale_preset_rejected(self):
        with pytest.raises(ValueError, match="galactic"):
            TrainSpec(name="x", scale="galactic")

    def test_finetune_needs_a_design(self):
        with pytest.raises(ValueError, match="design"):
            TrainSpec(name="x", finetune=FinetuneSpec())

    def test_finetune_design_satisfied_by_holdout(self):
        spec = TrainSpec(name="x", holdout_design="ode",
                         finetune=FinetuneSpec())
        assert spec.finetune_design() == "ode"

    def test_explicit_finetune_design_wins(self):
        spec = TrainSpec(name="x", holdout_design="ode",
                         finetune=FinetuneSpec(design="fir"))
        assert spec.finetune_design() == "fir"


class TestResolution:
    def test_data_kind_and_path(self):
        spec = TrainSpec(name="x", data="store:/data/s1")
        assert spec.data_kind == "store"
        assert spec.data_path == "/data/s1"
        assert TrainSpec(name="y").data_kind == "inline"
        assert TrainSpec(name="y").data_path is None

    def test_total_epochs_defaults_to_scale(self):
        spec = TrainSpec(name="x", scale="smoke")
        assert spec.total_epochs == SMOKE.epochs
        assert TrainSpec(name="x", scale="smoke",
                         epochs=5).total_epochs == 5

    def test_scale_overrides_apply(self):
        spec = TrainSpec(name="x", scale="smoke",
                         scale_overrides={"epochs": 11})
        assert spec.resolve_scale().epochs == 11
        assert spec.total_epochs == 11


class TestDescribeScale:
    def test_preset_has_no_overrides(self):
        name, overrides = describe_scale(SMOKE)
        assert name == "smoke"
        assert overrides == {}

    def test_custom_scale_captured_exactly(self):
        scale = custom_scale(SMOKE, epochs=2, channel_width=9)
        name, overrides = describe_scale(scale)
        assert name == "smoke"
        assert overrides == {"epochs": 2, "channel_width": 9}
        spec = TrainSpec(name="x", scale=name, scale_overrides=overrides)
        assert spec.resolve_scale() == scale
