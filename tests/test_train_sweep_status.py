"""Sweep driver and numpy-free status tests."""

import json
import subprocess
import sys

import pytest

from repro.gan import Dataset
from repro.train import (
    Runner,
    TrainSpec,
    format_run_status,
    load_sweep_file,
    prepare_specs,
    read_run_status,
    run_sweep,
)
from repro.train.sweep import derive_seed
from tests.conftest import make_dataset

SIZE = 16


def sweep_entries(count: int = 2, **extra) -> list[dict]:
    return [{"name": f"run-{index}", "data": "archive:UNSET",
             "scale": "smoke", "epochs": 1, "order": "stream",
             "model": {"base_filters": 4, "disc_filters": 4}, **extra}
            for index in range(count)]


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    path = tmp_path_factory.mktemp("sweep-data") / "data.npz"
    Dataset(list(make_dataset(4, size=SIZE))).save(path)
    return path


class TestSeeds:
    def test_derived_seeds_are_deterministic_and_distinct(self):
        seeds = [derive_seed(0, index) for index in range(8)]
        assert seeds == [derive_seed(0, index) for index in range(8)]
        assert len(set(seeds)) == 8

    def test_prepare_specs_assigns_and_respects_seeds(self, archive):
        entries = sweep_entries(3)
        entries[1]["seed"] = 777
        specs = prepare_specs(entries, base_seed=5)
        assert specs[0].seed == derive_seed(5, 0)
        assert specs[1].seed == 777
        assert specs[2].seed == derive_seed(5, 2)

    def test_duplicate_names_rejected(self):
        entries = sweep_entries(2)
        entries[1]["name"] = entries[0]["name"]
        with pytest.raises(ValueError, match="duplicate"):
            prepare_specs(entries)


class TestSweepFile:
    def test_plain_list(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(sweep_entries(2)))
        assert len(load_sweep_file(path)) == 2

    def test_base_plus_runs_overlay(self, tmp_path):
        document = {"base": {"scale": "smoke", "epochs": 1},
                    "runs": [{"name": "a"}, {"name": "b", "epochs": 2}]}
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(document))
        entries = load_sweep_file(path)
        assert entries[0] == {"scale": "smoke", "epochs": 1, "name": "a"}
        assert entries[1]["epochs"] == 2

    def test_empty_sweep_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="no runs"):
            load_sweep_file(path)


class TestRunSweep:
    def _entries(self, archive, count=2):
        return [dict(entry, data=f"archive:{archive}")
                for entry in sweep_entries(count)]

    def test_serial_and_parallel_artifacts_match(self, archive, tmp_path):
        specs = prepare_specs(self._entries(archive), base_seed=1)
        rows_serial = run_sweep(specs, tmp_path / "serial", workers=0)
        rows_parallel = run_sweep(specs, tmp_path / "parallel", workers=2)
        assert [row["status"] for row in rows_serial] == ["completed"] * 2
        assert [row["status"] for row in rows_parallel] == ["completed"] * 2
        for name in ("run-0", "run-1"):
            serial = (tmp_path / "serial" / name
                      / "losses.jsonl").read_bytes()
            parallel = (tmp_path / "parallel" / name
                        / "losses.jsonl").read_bytes()
            assert serial == parallel, name

    def test_rerun_skips_existing_runs_without_clobbering(self, archive,
                                                          tmp_path):
        """A second sweep invocation must not mark finished runs failed
        or touch their directories."""
        specs = prepare_specs(self._entries(archive), base_seed=1)
        run_sweep(specs, tmp_path, workers=0)
        before = (tmp_path / "run-0" / "losses.jsonl").read_bytes()
        rows = run_sweep(specs, tmp_path, workers=0)
        assert [row["status"] for row in rows] == ["skipped", "skipped"]
        assert rows[0]["existing_state"] == "completed"
        assert (tmp_path / "run-0"
                / "losses.jsonl").read_bytes() == before

    def test_summary_written_and_failures_reported(self, archive, tmp_path):
        entries = self._entries(archive, count=2)
        entries[1]["data"] = "archive:/nowhere/else.npz"
        specs = prepare_specs(entries)
        rows = run_sweep(specs, tmp_path, workers=0)
        assert rows[0]["status"] == "completed"
        assert rows[1]["status"] == "failed"
        assert "error" in rows[1]
        summary = json.loads((tmp_path / "sweep.json").read_text())
        assert [row["name"] for row in summary["runs"]] == ["run-0", "run-1"]


class TestStatus:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("status")
        dataset = make_dataset(4, size=SIZE)
        spec = TrainSpec(name="watched", data="inline", scale="smoke",
                         seed=1, epochs=2, order="stream",
                         model={"base_filters": 4, "disc_filters": 4})
        Runner.create(spec, root, dataset=dataset).run()
        return root / "watched"

    def test_read_run_status(self, run_dir):
        info = read_run_status(run_dir)
        assert info["name"] == "watched"
        assert info["state"] == "completed"
        assert info["global_step"] == 8
        assert info["last_epoch"]["event"] == "epoch"
        assert info["last_step"]["step"] >= 1

    def test_format_is_terminal_friendly(self, run_dir):
        rendered = format_run_status(read_run_status(run_dir))
        assert "watched" in rendered and "completed" in rendered
        assert "last epoch" in rendered

    def test_not_a_run_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_run_status(tmp_path)

    def test_cli_status_never_imports_numpy(self, run_dir):
        """``repro train status`` must stay light: no numpy anywhere."""
        from pathlib import Path

        import repro

        source_root = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "import sys\n"
            "from repro.cli import main\n"
            f"main(['train', 'status', {str(run_dir)!r}])\n"
            "assert 'numpy' not in sys.modules, 'numpy was imported'\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={"PYTHONPATH": source_root, "PATH": "/usr/bin:/bin"})
        assert result.returncode == 0, result.stderr
        assert "watched" in result.stdout
