"""Job spool and worker pool: atomic claims, ordering, invariance."""

import threading

import pytest

from tests.conftest import make_dataset, make_tiny_model
from repro.fleet import (
    ArtifactStore,
    JobError,
    JobStore,
    PoolError,
    WorkerPool,
    executor,
    worker_loop,
)
from repro.fleet.pool import EXECUTORS


@pytest.fixture()
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


@pytest.fixture()
def echo_executor():
    """A trivial registered executor, removed again after the test."""
    @executor("echo")
    def run_echo(payload):
        if payload.get("boom"):
            raise ValueError("boom requested")
        return {"echo": payload["value"]}

    yield run_echo
    EXECUTORS.pop("echo", None)


class TestSpool:
    def test_submit_claim_complete_roundtrip(self, store):
        submitted = store.submit("echo", {"value": 1})
        assert submitted.state == "pending"
        job = store.claim("w0")
        assert job.job_id == submitted.job_id
        assert job.worker == "w0"
        store.complete(job, {"echo": 1})
        assert store.counts() == {"pending": 0, "running": 0,
                                  "done": 1, "failed": 0}
        assert store.get(job.job_id).result == {"echo": 1}

    def test_claims_follow_submit_order(self, store):
        ids = [store.submit("echo", {"value": i}).job_id for i in range(5)]
        claimed = [store.claim("w").job_id for _ in range(5)]
        assert claimed == ids

    def test_explicit_duplicate_id_rejected(self, store):
        store.submit("echo", {}, job_id="mine")
        with pytest.raises(JobError, match="already exists"):
            store.submit("echo", {}, job_id="mine")

    def test_concurrent_claimers_each_job_claimed_once(self, store):
        for i in range(20):
            store.submit("echo", {"value": i})
        claimed: list = []
        lock = threading.Lock()

        def drain(worker):
            while True:
                job = store.claim(worker)
                if job is None:
                    return
                with lock:
                    claimed.append(job.job_id)

        threads = [threading.Thread(target=drain, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(claimed) == 20
        assert len(set(claimed)) == 20          # nobody claimed twice

    def test_concurrent_submitters_never_collide(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        errors: list = []

        def submit_some():
            try:
                for _ in range(10):
                    store.submit("echo", {})
            except Exception as error:   # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=submit_some) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.counts()["pending"] == 40
        indexes = [job.submit_index for job in store.jobs()]
        assert len(set(indexes)) == 40          # no index reused

    def test_stop_sentinel(self, store):
        assert store.stop_requested is False
        store.request_stop()
        assert store.stop_requested is True
        store.clear_stop()
        assert store.stop_requested is False


class TestWorkerLoop:
    def test_drains_and_counts(self, store, echo_executor):
        for i in range(4):
            store.submit("echo", {"value": i})
        store.submit("echo", {"value": -1, "boom": True})
        counters = worker_loop(str(store.root), "w0", publish=False)
        assert counters == {"claimed": 5, "done": 4, "failed": 1,
                            "lease_lost": 0}
        failed = store.jobs("failed")
        assert len(failed) == 1
        assert "boom requested" in failed[0].error

    def test_unknown_kind_fails_the_job_not_the_worker(self, store):
        store.submit("no-such-kind", {})
        counters = worker_loop(str(store.root), "w0", publish=False)
        assert counters["failed"] == 1
        assert "no executor" in store.jobs("failed")[0].error

    def test_results_ordered_by_submit_index(self, store, echo_executor):
        for i in range(6):
            store.submit("echo", {"value": i})
        worker_loop(str(store.root), "w0", publish=False)
        values = [job.result["echo"] for job in store.jobs("done")]
        assert values == list(range(6))


class TestPoolInvariance:
    def _forecast_spool(self, tmp_path, tag, count=6):
        root = tmp_path / f"spool-{tag}"
        store = JobStore(root)
        for index in range(count):
            store.submit("forecast", {
                "checkpoints": str(tmp_path / "ckpt"),
                "model": "cong",
                "input": {"store": str(tmp_path / "data"), "index": index},
                "artifacts": str(tmp_path / f"art-{tag}")})
        return root, store

    def test_forecast_digests_invariant_to_worker_count(self, tmp_path):
        """The acceptance bar: a 4-worker pool produces the same artifact
        digests and byte-identical blobs as a serial drain."""
        (tmp_path / "ckpt").mkdir()
        make_tiny_model().save(tmp_path / "ckpt" / "cong.npz")
        from repro.data.store import ShardedStore
        ShardedStore.from_dataset(tmp_path / "data",
                                  make_dataset(count=6, size=16),
                                  shard_size=3)
        results = {}
        for tag, workers in (("serial", 1), ("fleet", 4)):
            root, store = self._forecast_spool(tmp_path, tag)
            counts = WorkerPool(root, workers=workers,
                                publish=False).run_until_drained(timeout=300)
            assert counts["failed"] == 0 and counts["done"] == 6
            results[tag] = [job.result["artifact"]
                            for job in store.jobs("done")]
        assert results["serial"] == results["fleet"]
        serial = ArtifactStore(tmp_path / "art-serial")
        fleet = ArtifactStore(tmp_path / "art-fleet")
        for digest in results["serial"]:
            assert serial.read_bytes(digest) == fleet.read_bytes(digest)
        assert fleet.verify() == []

    def test_pool_timeout_raises(self, tmp_path, echo_executor):
        # workers=0 validates; a bad worker count is caught up front.
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(tmp_path / "jobs", workers=-1)

    def test_pool_serial_path_equals_worker_loop(self, tmp_path,
                                                 echo_executor):
        store = JobStore(tmp_path / "jobs")
        for i in range(3):
            store.submit("echo", {"value": i})
        counts = WorkerPool(tmp_path / "jobs", workers=1,
                            publish=False).run_until_drained()
        assert counts["done"] == 3


class TestPoolTelemetry:
    def test_worker_publishes_snapshots(self, tmp_path, echo_executor):
        from repro.obs.aggregate import aggregate_dir
        from repro.obs.timeseries import flatten_export

        store = JobStore(tmp_path / "jobs")
        for i in range(3):
            store.submit("echo", {"value": i})
        worker_loop(str(store.root), "w0", publish=True)
        fleet = aggregate_dir(tmp_path / "jobs")
        assert fleet.workers == ["pool-w0"]
        flat = flatten_export(fleet.merged)
        assert flat["fleet_jobs_done_total"] == 3
        assert flat["fleet_jobs_claimed_total"] == 3
