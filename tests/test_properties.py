"""Cross-module property tests (hypothesis) and algorithmic cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SMOKE
from repro.fpga import (
    DesignSpec,
    PathFinderRouter,
    Placement,
    RouterOptions,
    generate_design,
    paper_architecture,
)
from repro.fpga.arch import FpgaArchitecture
from repro.fpga.generators import minimum_architecture_size
from repro.viz import FloorplanLayout, minimum_image_size


class TestLayoutProperties:
    @settings(max_examples=12, deadline=None)
    @given(width=st.integers(3, 14), height=st.integers(3, 14),
           extra=st.sampled_from([1, 2, 4]))
    def test_rects_disjoint_for_any_grid(self, width, height, extra):
        """Tiles, channels, and pads never overlap at any resolution."""
        arch = FpgaArchitecture(width, height)
        size = minimum_image_size(arch) * extra
        if size > 512:
            return
        layout = FloorplanLayout(arch, size)
        cover = np.zeros((size, size), dtype=np.int32)

        def paint(rect):
            x0, y0, x1, y1 = rect
            assert 0 <= x0 <= x1 <= size
            assert 0 <= y0 <= y1 <= size
            cover[y0:y1, x0:x1] += 1

        for x in range(1, width + 1):
            for y in range(1, height + 1):
                paint(layout.tile_rect(x, y))
        for x in range(1, width + 1):
            for y in range(0, height + 1):
                paint(layout.hchan_rect(x, y))
        for x in range(0, width + 1):
            for y in range(1, height + 1):
                paint(layout.vchan_rect(x, y))
        assert cover.max() <= 1

    @settings(max_examples=12, deadline=None)
    @given(width=st.integers(3, 14))
    def test_minimum_size_always_satisfies_2x2(self, width):
        arch = FpgaArchitecture(width, width)
        layout = FloorplanLayout(arch, minimum_image_size(arch))
        for x in range(1, width + 1):
            x0, y0, x1, y1 = layout.tile_rect(x, 1)
            assert x1 - x0 >= 2
            assert y1 - y0 >= 2


class TestRouterCrossChecks:
    @pytest.fixture(scope="class")
    def routed_setup(self):
        spec = DesignSpec("astar", 40, 12, 120)
        netlist = generate_design(spec, cluster_size=4, seed=13)
        arch = paper_architecture(minimum_architecture_size(netlist),
                                  channel_width=64)
        placement = Placement.random(netlist, arch,
                                     np.random.default_rng(3))
        return netlist, arch, placement

    def test_astar_matches_dijkstra(self, routed_setup):
        """With an admissible heuristic (astar_weight=1, >=1 segment costs),
        A* must find paths of the same cost as plain Dijkstra.  Checked on a
        clean graph (uniform costs), where cost equals path length."""
        netlist, arch, placement = routed_setup

        def fresh_router(weight: float) -> PathFinderRouter:
            router = PathFinderRouter(
                netlist, arch, placement,
                options=RouterOptions(astar_weight=weight))
            graph = router.graph
            router._cost_list = [1.0] * graph.num_nodes
            router._history_list = [0.0] * graph.num_nodes
            router._occ_list = [0] * graph.num_nodes
            router._cap_list = graph.capacity.tolist()
            router._pres_fac = 0.5
            return router

        astar = fresh_router(1.0)
        dijkstra = fresh_router(0.0)
        rng = np.random.default_rng(4)
        blocks = rng.choice(netlist.num_blocks, size=(20, 2))
        for source_block, target_block in blocks:
            if source_block == target_block:
                continue
            sources = astar._block_access(int(source_block))
            targets = astar._block_access(int(target_block))
            path_a = astar._shortest_path(sources, targets)
            path_d = dijkstra._shortest_path(sources, targets)
            assert len(path_a) == len(path_d), (source_block, target_block)

    def test_wirelength_lower_bound_is_hpwl_like(self, routed_setup):
        """Each 2-pin connection uses at least ~manhattan-distance segments,
        so total wirelength is bounded below by the sum of net spans."""
        netlist, arch, placement = routed_setup
        result = PathFinderRouter(
            netlist, arch, placement,
            options=RouterOptions(max_iterations=1)).route()
        for net in netlist.nets:
            xs = placement.xs[list(net.terminals)]
            ys = placement.ys[list(net.terminals)]
            span = (xs.max() - xs.min()) + (ys.max() - ys.min())
            # A tree spanning the bbox needs at least span-ish segments.
            assert len(result.net_trees[net.id]) >= max(1, span - 1)


class TestGeneratorProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_congestion_signal_exists_for_any_seed(self, seed):
        """For any generator seed, a deliberately bad placement must not be
        *less* congested than an annealed one — the monotone signal the
        whole study depends on."""
        from repro.fpga import PlacerOptions, SimulatedAnnealingPlacer

        spec = DesignSpec("sig", 36, 10, 110)
        netlist = generate_design(spec, cluster_size=4, seed=seed)
        arch = paper_architecture(minimum_architecture_size(netlist),
                                  channel_width=24)
        good = SimulatedAnnealingPlacer(
            netlist, arch, PlacerOptions(seed=1, alpha_t=0.8,
                                         inner_num=1.0)).place().placement
        bad = Placement.random(netlist, arch, np.random.default_rng(seed))
        good_wl = PathFinderRouter(
            netlist, arch, good,
            options=RouterOptions(max_iterations=2)).route().wirelength
        bad_wl = PathFinderRouter(
            netlist, arch, bad,
            options=RouterOptions(max_iterations=2)).route().wirelength
        assert good_wl <= bad_wl


class TestPipelineDeterminism:
    def test_bundle_build_is_reproducible(self):
        """Two independent builds of the same design dataset are identical
        — the property that makes cached and fresh experiments agree."""
        from repro.flows import build_design_bundle
        from repro.fpga.generators import scaled_suite

        spec = scaled_suite(SMOKE)[1]
        a = build_design_bundle(spec, SMOKE, num_placements=3, seed=8)
        b = build_design_bundle(spec, SMOKE, num_placements=3, seed=8)
        assert a.channel_width == b.channel_width
        for sample_a, sample_b in zip(a.dataset, b.dataset):
            np.testing.assert_array_equal(sample_a.x, sample_b.x)
            np.testing.assert_array_equal(sample_a.y, sample_b.y)
            assert sample_a.true_congestion == sample_b.true_congestion
