"""Shape, mode, and bookkeeping tests for every layer type."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Concat,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Identity,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, kernel=4, stride=2, pad=1, rng=rng)
        out = conv(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_channel_mismatch_raises(self, rng):
        conv = Conv2d(3, 8, rng=rng)
        with pytest.raises(ValueError):
            conv(np.zeros((1, 4, 8, 8), dtype=np.float32))

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2d(3, 8, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 8, 4, 4), dtype=np.float32))

    def test_bias_shifts_output(self, rng):
        conv = Conv2d(1, 2, kernel=1, stride=1, pad=0, rng=rng)
        x = np.zeros((1, 1, 3, 3), dtype=np.float32)
        conv.bias.data[...] = [1.0, -2.0]
        out = conv(x)
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_known_convolution_value(self, rng):
        conv = Conv2d(1, 1, kernel=2, stride=1, pad=0, bias=False, rng=rng)
        conv.weight.data[...] = 1.0
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        out = conv(x)
        # Each output = sum of the 2x2 window.
        assert out[0, 0, 0, 0] == pytest.approx(0 + 1 + 3 + 4)
        assert out[0, 0, 1, 1] == pytest.approx(4 + 5 + 7 + 8)

    def test_gradient_accumulates_across_backwards(self, rng):
        conv = Conv2d(1, 1, kernel=2, stride=1, pad=0, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        out = conv(x)
        conv.backward(np.ones_like(out))
        first = conv.weight.grad.copy()
        conv.forward(x)
        conv.backward(np.ones_like(out))
        np.testing.assert_allclose(conv.weight.grad, 2 * first, rtol=1e-6)


class TestConvTranspose2d:
    def test_output_shape_doubles(self, rng):
        deconv = ConvTranspose2d(8, 4, kernel=4, stride=2, pad=1, rng=rng)
        out = deconv(rng.normal(size=(2, 8, 8, 8)).astype(np.float32))
        assert out.shape == (2, 4, 16, 16)

    def test_adjoint_of_conv(self, rng):
        """convT with weight W is the exact adjoint of conv with weight W."""
        conv = Conv2d(3, 5, kernel=4, stride=2, pad=1, bias=False, rng=rng)
        deconv = ConvTranspose2d(5, 3, kernel=4, stride=2, pad=1, bias=False,
                                 rng=rng)
        # ConvTranspose weight layout (in=5, out=3, k, k) coincides with the
        # conv weight layout (out=5, in=3, k, k), so share it directly.
        deconv.weight.data[...] = conv.weight.data
        x = rng.normal(size=(1, 3, 8, 8)).astype(np.float64)
        y = rng.normal(size=(1, 5, 4, 4)).astype(np.float64)
        lhs = float((conv(x.astype(np.float32)).astype(np.float64) * y).sum())
        rhs = float((x * deconv(y.astype(np.float32)).astype(np.float64)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_channel_mismatch_raises(self, rng):
        deconv = ConvTranspose2d(8, 4, rng=rng)
        with pytest.raises(ValueError):
            deconv(np.zeros((1, 3, 4, 4), dtype=np.float32))


class TestBatchNorm2d:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 4, 8, 8)).astype(np.float32)
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(loc=2.0, size=(8, 2, 4, 4)).astype(np.float32)
        for _ in range(50):
            bn(x)
        bn.eval()
        out = bn(x)
        # After many updates the running stats converge to the batch stats,
        # so eval output is also normalized.
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.05)

    def test_gamma_beta_affect_output(self, rng):
        bn = BatchNorm2d(1)
        bn.gamma.data[...] = 2.0
        bn.beta.data[...] = 3.0
        x = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
        out = bn(x)
        assert out.mean() == pytest.approx(3.0, abs=1e-4)

    def test_batch_size_one_acts_as_instance_norm(self, rng):
        # The paper trains with batch size 1; BN must stay well-defined.
        bn = BatchNorm2d(3)
        x = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
        out = bn(x)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)


class TestActivationsAndDropout:
    def test_relu_is_leaky_with_zero_slope(self, rng):
        relu = ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32).reshape(1, 1, 1, 2)
        np.testing.assert_allclose(relu(x).ravel(), [0.0, 2.0])

    def test_leaky_relu_backward_mask(self):
        layer = LeakyReLU(0.2)
        x = np.array([-1.0, 1.0], dtype=np.float32).reshape(1, 1, 1, 2)
        layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad.ravel(), [0.2, 1.0])

    def test_tanh_range(self, rng):
        layer = Tanh()
        out = layer(rng.normal(scale=10, size=(1, 1, 8, 8)).astype(np.float32))
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_sigmoid_backward_matches_derivative(self):
        layer = Sigmoid()
        x = np.array([0.0], dtype=np.float64).reshape(1, 1, 1, 1)
        layer(x)
        grad = layer.backward(np.ones_like(x))
        assert grad.ravel()[0] == pytest.approx(0.25)

    def test_dropout_scales_expectation(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((1, 1, 64, 64), dtype=np.float32)
        out = layer(x)
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        kept = out != 0
        np.testing.assert_allclose(out[kept], 2.0)

    def test_dropout_identity_in_eval(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    def test_dropout_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestContainers:
    def test_sequential_forward_backward_roundtrip(self, rng):
        model = Sequential(
            Conv2d(2, 4, rng=rng), BatchNorm2d(4), LeakyReLU(0.2),
            Conv2d(4, 1, rng=rng),
        )
        x = rng.normal(size=(1, 2, 8, 8)).astype(np.float32)
        out = model(x)
        assert out.shape == (1, 1, 2, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_sequential_tracks_parameters(self, rng):
        model = Sequential(Conv2d(1, 2, rng=rng), BatchNorm2d(2))
        names = [name for name, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.gamma" in names

    def test_identity_passthrough(self, rng):
        x = rng.normal(size=(1, 1, 2, 2)).astype(np.float32)
        layer = Identity()
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    def test_concat_splits_gradient(self, rng):
        concat = Concat()
        a = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        b = rng.normal(size=(1, 3, 4, 4)).astype(np.float32)
        out = concat.forward((a, b))
        assert out.shape == (1, 5, 4, 4)
        grad_a, grad_b = concat.backward(out)
        np.testing.assert_array_equal(grad_a, a)
        np.testing.assert_array_equal(grad_b, b)

    def test_concat_shape_mismatch_raises(self, rng):
        concat = Concat()
        with pytest.raises(ValueError):
            concat.forward((np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 4, 4))))

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert not model.layers[0].training
        assert not model.layers[1].layers[0].training


class TestStateDict:
    def test_roundtrip_preserves_values(self, rng):
        model = Sequential(Conv2d(1, 2, rng=rng), BatchNorm2d(2))
        state = model.state_dict()
        clone = Sequential(Conv2d(1, 2, rng=np.random.default_rng(99)),
                           BatchNorm2d(2))
        clone.load_state_dict(state)
        x = rng.normal(size=(1, 1, 8, 8)).astype(np.float32)
        model.eval()
        clone.eval()
        np.testing.assert_allclose(model(x), clone(x), rtol=1e-6)

    def test_includes_running_buffers(self, rng):
        model = Sequential(BatchNorm2d(2))
        assert any("running_mean" in key for key in model.state_dict())

    def test_wrong_shape_raises(self, rng):
        model = Sequential(Conv2d(1, 2, rng=rng))
        state = model.state_dict()
        state["layers.0.weight"] = np.zeros((1, 1, 1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_unknown_key_raises(self, rng):
        model = Sequential(Conv2d(1, 2, rng=rng))
        with pytest.raises(KeyError):
            model.load_state_dict({"nonsense": np.zeros(1)})
