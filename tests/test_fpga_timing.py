"""Static timing analysis tests."""

import numpy as np
import pytest

from repro.fpga import (
    Block,
    BlockType,
    DesignSpec,
    Net,
    Netlist,
    PathFinderRouter,
    Placement,
    PlacerOptions,
    SimulatedAnnealingPlacer,
    generate_design,
    paper_architecture,
)
from repro.fpga.arch import Site
from repro.fpga.generators import minimum_architecture_size
from repro.fpga.timing import TimingAnalyzer


def chain_netlist() -> Netlist:
    """io -> clb -> clb -> io, a three-net chain with known depth."""
    blocks = [
        Block(0, "in", BlockType.IO),
        Block(1, "a", BlockType.CLB),
        Block(2, "b", BlockType.CLB),
        Block(3, "out", BlockType.IO),
    ]
    nets = [
        Net(0, "n0", 0, (1,)),
        Net(1, "n1", 1, (2,)),
        Net(2, "n2", 2, (3,)),
    ]
    return Netlist("chain", blocks, nets)


@pytest.fixture
def chain_placed():
    netlist = chain_netlist()
    arch = paper_architecture(4, channel_width=8)
    sites = [Site(0, 1, 0), Site(1, 1), Site(2, 1), Site(5, 1, 0)]
    return netlist, arch, Placement(netlist, arch, sites)


class TestAnalyzer:
    def test_chain_delay_is_sum_of_edges(self, chain_placed):
        netlist, arch, placement = chain_placed
        analyzer = TimingAnalyzer(netlist, placement, logic_delay=1.0,
                                  wire_delay=0.1)
        report = analyzer.report()
        # Edges: (0,1)->(1,1) dist 1; (1,1)->(2,1) dist 1; (2,1)->(5,1) dist 3.
        assert report.critical_delay == pytest.approx(3 * 1.0 + 0.1 * 5)
        assert report.critical_path == (0, 1, 2, 3)

    def test_arrival_monotone_along_path(self, chain_placed):
        netlist, arch, placement = chain_placed
        arrivals = TimingAnalyzer(netlist, placement).arrival_times()
        assert arrivals[0] < arrivals[1] < arrivals[2] < arrivals[3]

    def test_zero_wire_delay_counts_logic_levels(self, chain_placed):
        netlist, arch, placement = chain_placed
        analyzer = TimingAnalyzer(netlist, placement, logic_delay=1.0,
                                  wire_delay=0.0)
        assert analyzer.report().critical_delay == pytest.approx(3.0)

    def test_routed_delay_uses_tree_size(self, chain_placed):
        netlist, arch, placement = chain_placed
        routing = PathFinderRouter(netlist, arch, placement).route()
        placed_only = TimingAnalyzer(netlist, placement).report()
        routed = TimingAnalyzer(netlist, placement,
                                routing=routing).report()
        # Routed trees are at least as long as Manhattan distance.
        assert routed.critical_delay >= placed_only.critical_delay - 1e-9

    def test_handles_cyclic_netlists(self):
        blocks = [Block(0, "a", BlockType.CLB), Block(1, "b", BlockType.CLB)]
        nets = [Net(0, "f", 0, (1,)), Net(1, "g", 1, (0,))]
        netlist = Netlist("loop", blocks, nets)
        arch = paper_architecture(4, channel_width=8)
        placement = Placement(netlist, arch, [Site(1, 1), Site(1, 2)])
        report = TimingAnalyzer(netlist, placement).report()
        assert np.isfinite(report.critical_delay)

    def test_spread_placement_has_longer_paths(self):
        """Wire delay must respond to placement quality."""
        spec = DesignSpec("timing", 60, 20, 180)
        netlist = generate_design(spec, cluster_size=4, seed=4)
        arch = paper_architecture(minimum_architecture_size(netlist),
                                  channel_width=16)
        good = SimulatedAnnealingPlacer(
            netlist, arch, PlacerOptions(seed=1)).place().placement
        bad = Placement.random(netlist, arch, np.random.default_rng(0))
        good_delay = TimingAnalyzer(netlist, good).report().critical_delay
        bad_delay = TimingAnalyzer(netlist, bad).report().critical_delay
        assert good_delay <= bad_delay

    def test_criticality_mode_shortens_critical_path(self):
        """The paper sweeps place_algorithm; the timing-driven stand-in
        should produce equal-or-better critical delay than pure wirelength
        (averaged over seeds to damp SA noise)."""
        spec = DesignSpec("crit", 80, 24, 240)
        netlist = generate_design(spec, cluster_size=4, seed=9)
        arch = paper_architecture(minimum_architecture_size(netlist),
                                  channel_width=16)

        def mean_delay(algorithm: str) -> float:
            delays = []
            for seed in (1, 2, 3):
                placed = SimulatedAnnealingPlacer(
                    netlist, arch,
                    PlacerOptions(seed=seed,
                                  place_algorithm=algorithm)).place()
                delays.append(TimingAnalyzer(
                    netlist, placed.placement).report().critical_delay)
            return float(np.mean(delays))

        crit = mean_delay("criticality")
        bbox = mean_delay("bounding_box")
        # Allow a small margin: SA is stochastic, but criticality weighting
        # must not be systematically worse.
        assert crit <= bbox * 1.10
