"""Metrics registry: kinds, bucket edges, determinism, Prometheus text."""

import json
import re

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_fn_backed_counter_is_collected_not_settable(self):
        box = {"n": 7}
        counter = Counter(fn=lambda: box["n"])
        assert counter.value == 7
        box["n"] = 9
        assert counter.value == 9
        with pytest.raises(RuntimeError, match="collected"):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_set_to_max_ratchets(self):
        gauge = Gauge()
        gauge.set_to_max(5)
        gauge.set_to_max(3)
        assert gauge.value == 5

    def test_fn_backed_gauge_rejects_writes(self):
        gauge = Gauge(fn=lambda: 11)
        assert gauge.value == 11
        with pytest.raises(RuntimeError, match="collected"):
            gauge.set(1)


class TestHistogramBucketEdges:
    """The le-semantics contract: a value equal to a bound lands IN it."""

    def test_observation_on_bound_lands_in_that_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.0)   # == first bound -> bucket "1"
        histogram.observe(1.5)   # (1, 2] -> bucket "2"
        histogram.observe(2.0)   # == second bound -> bucket "2"
        histogram.observe(2.01)  # above all bounds -> +Inf
        assert histogram.bucket_counts() == {"1": 1, "2": 2, "+Inf": 1}
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.51)

    def test_integer_bounds_render_as_bare_ints(self):
        histogram = Histogram(buckets=range(1, 4))
        histogram.observe(3)
        assert list(histogram.bucket_counts()) == ["1", "2", "3", "+Inf"]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())

    def test_max_and_mean(self):
        histogram = Histogram(buckets=(10.0,))
        assert histogram.max_observed is None
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(6.0)
        assert histogram.max_observed == 6.0
        assert histogram.mean == 4.0


class TestHistogramQuantiles:
    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram(buckets=(1.0,)).quantile(0.5) == 0.0

    def test_interpolates_within_owning_bucket(self):
        histogram = Histogram(buckets=(0.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            histogram.observe(value)
        # All 4 observations are in (0, 10]; p50 interpolates halfway.
        assert histogram.quantile(0.5) == pytest.approx(5.0)

    def test_quantile_clamped_by_observed_max(self):
        histogram = Histogram(buckets=(0.0, 10.0))
        histogram.observe(1.0)
        assert histogram.quantile(0.99) <= 1.0

    def test_overflow_bucket_returns_observed_max(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == 50.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).quantile(1.5)

    def test_q0_is_exact_observed_minimum(self):
        histogram = Histogram(buckets=(0.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 2.0

    def test_q1_is_exact_observed_maximum(self):
        histogram = Histogram(buckets=(0.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            histogram.observe(value)
        assert histogram.quantile(1.0) == 8.0

    def test_q0_and_q1_on_empty_histogram_are_zero(self):
        empty = Histogram(buckets=(1.0,))
        assert empty.quantile(0.0) == 0.0
        assert empty.quantile(1.0) == 0.0

    def test_quantile_clamped_by_observed_minimum(self):
        # One sample at 9 in (0, 10]: every quantile is exactly 9.
        histogram = Histogram(buckets=(0.0, 10.0))
        histogram.observe(9.0)
        for q in (0.0, 0.25, 0.5, 1.0):
            assert histogram.quantile(q) == 9.0

    def test_min_tracked_in_snapshot(self):
        histogram = Histogram(buckets=(10.0,))
        for value in (3.0, 7.0):
            histogram.observe(value)
        assert histogram.min_observed == 3.0
        assert histogram._snapshot_value()["min"] == 3

    def test_quantile_from_counts_matches_histogram(self):
        from repro.obs.metrics import quantile_from_counts

        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 2.0, 3.0, 7.0, 12.0):
            histogram.observe(value)
        state = histogram._raw_state()
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert quantile_from_counts(
                (1.0, 5.0, 10.0), state["counts"], q,
                minimum=state["min"], maximum=state["max"]) == \
                histogram.quantile(q)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "help")
        second = registry.counter("hits")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.gauge("thing")

    def test_labelname_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("reqs", labelnames=("route",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("reqs", labelnames=("method",))

    def test_labeled_family_children(self):
        registry = MetricsRegistry()
        family = registry.counter("reqs", "by route",
                                  labelnames=("route",))
        family.labels(route="/b").inc(2)
        family.labels(route="/a").inc()
        assert family.labels(route="/b").value == 2
        items = family.items()
        assert [key for key, _ in items] == [("/a",), ("/b",)]  # sorted
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(method="GET")

    def test_snapshot_is_deterministic_json(self):
        registry = MetricsRegistry()
        registry.gauge("z_depth").set(3)
        registry.counter("a_total").inc(2)
        histogram = registry.histogram("latency", buckets=(0.5, 1.0))
        histogram.observe(0.25)
        first = json.dumps(registry.snapshot(), sort_keys=False)
        second = json.dumps(registry.snapshot(), sort_keys=False)
        assert first == second
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a_total", "latency", "z_depth"]
        assert snapshot["latency"]["count"] == 1
        assert set(snapshot["latency"]) == {
            "buckets", "count", "sum", "mean", "min", "max", "p50", "p99"}

    def test_snapshot_renders_whole_numbers_as_ints(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        assert registry.snapshot()["n"] == 2
        assert isinstance(registry.snapshot()["n"], int)


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")


class TestPrometheusRendering:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("serve_requests_total", "Requests.").inc(3)
        registry.gauge("queue_depth", "Depth.").set(2)
        family = registry.counter("http_requests_total", "By route.",
                                  labelnames=("route",))
        family.labels(route="/v1/forecast").inc(5)
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_every_line_is_comment_or_sample(self):
        text = self.make_registry().render_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert line.startswith("#") or SAMPLE_LINE.match(line), line

    def test_help_and_type_headers(self):
        text = self.make_registry().render_prometheus()
        assert "# HELP serve_requests_total Requests." in text
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = self.make_registry().render_prometheus()
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum 5.55" in text

    def test_labeled_samples(self):
        text = self.make_registry().render_prometheus()
        assert 'http_requests_total{route="/v1/forecast"} 5' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("odd", labelnames=("name",))
        family.labels(name='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '{name="a\\"b\\\\c\\nd"}' in text
