"""Optimizer behaviour tests."""

import numpy as np
import pytest

from repro.nn import Adam, SGD
from repro.nn.layers import Parameter


def quadratic_grad(param: Parameter, target: float = 3.0) -> None:
    """Gradient of 0.5 * (x - target)^2."""
    param.grad[...] = param.data - target


class TestSGD:
    def test_single_step(self):
        param = Parameter(np.array([0.0], dtype=np.float32))
        opt = SGD([param], lr=0.1)
        quadratic_grad(param)
        opt.step()
        assert param.data[0] == pytest.approx(0.3)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0], dtype=np.float32))
        opt = SGD([param], lr=0.5)
        for _ in range(50):
            opt.zero_grad()
            quadratic_grad(param)
            opt.step()
        assert param.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([10.0], dtype=np.float32))
        heavy = Parameter(np.array([10.0], dtype=np.float32))
        opt_plain = SGD([plain], lr=0.05)
        opt_heavy = SGD([heavy], lr=0.05, momentum=0.9)
        for _ in range(20):
            quadratic_grad(plain)
            opt_plain.step()
            plain.zero_grad()
            quadratic_grad(heavy)
            opt_heavy.step()
            heavy.zero_grad()
        assert abs(heavy.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_paper_defaults(self):
        opt = Adam([Parameter(np.zeros(1))])
        assert opt.lr == pytest.approx(2e-4)
        assert opt.beta1 == pytest.approx(0.5)
        assert opt.beta2 == pytest.approx(0.999)
        assert opt.eps == pytest.approx(1e-8)

    def test_first_step_size_is_lr(self):
        # With bias correction the very first Adam step has magnitude ~lr.
        param = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([param], lr=0.1)
        param.grad[...] = 123.0
        opt.step()
        assert param.data[0] == pytest.approx(0.9, abs=1e-4)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0], dtype=np.float32))
        opt = Adam([param], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            quadratic_grad(param)
            opt.step()
        assert param.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_zero_grad_clears_all(self):
        params = [Parameter(np.ones(3)), Parameter(np.ones(2))]
        opt = Adam(params)
        for param in params:
            param.grad[...] = 5.0
        opt.zero_grad()
        for param in params:
            np.testing.assert_array_equal(param.grad, 0.0)


class TestAdamReference:
    def test_matches_textbook_adam_trajectory(self):
        """The flat/fused update must track the textbook m-hat/v-hat chain
        (guards the v-decay and bias-correction rewrites)."""
        rng = np.random.default_rng(0)
        param = Parameter(rng.normal(size=(6, 5)).astype(np.float32))
        reference = param.data.astype(np.float64).copy()
        lr, b1, b2, eps = 2e-4, 0.5, 0.999, 1e-8
        optimizer = Adam([param], lr=lr, beta1=b1, beta2=b2, eps=eps)
        m = np.zeros_like(reference)
        v = np.zeros_like(reference)
        for step in range(1, 26):
            grad = rng.normal(size=reference.shape)
            param.grad[...] = grad.astype(np.float32)
            optimizer.step()
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad * grad
            m_hat = m / (1 - b1 ** step)
            v_hat = v / (1 - b2 ** step)
            reference -= lr * m_hat / (np.sqrt(v_hat) + eps)
            np.testing.assert_allclose(param.data, reference,
                                       rtol=1e-4, atol=1e-6)

    def test_second_moment_decays(self):
        """v is an EMA, not a running sum: with gradients that go to zero
        the effective step size must recover (catches a dropped v *= b2)."""
        param = Parameter(np.zeros(4, dtype=np.float32))
        optimizer = Adam([param], lr=1e-2, beta1=0.0, beta2=0.5)
        param.grad[...] = 10.0
        optimizer.step()
        for _ in range(40):                       # decay v with tiny grads
            param.grad[...] = 1e-4
            optimizer.step()
        before = param.data.copy()
        param.grad[...] = 1e-4
        optimizer.step()
        step_size = float(np.abs(param.data - before).max())
        # With v decayed to ~grad^2 the update is ~lr; a running-sum v
        # would keep it pinned near zero.
        assert step_size > 2e-3
