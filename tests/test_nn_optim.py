"""Optimizer behaviour tests."""

import numpy as np
import pytest

from repro.nn import Adam, SGD
from repro.nn.layers import Parameter


def quadratic_grad(param: Parameter, target: float = 3.0) -> None:
    """Gradient of 0.5 * (x - target)^2."""
    param.grad[...] = param.data - target


class TestSGD:
    def test_single_step(self):
        param = Parameter(np.array([0.0], dtype=np.float32))
        opt = SGD([param], lr=0.1)
        quadratic_grad(param)
        opt.step()
        assert param.data[0] == pytest.approx(0.3)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0], dtype=np.float32))
        opt = SGD([param], lr=0.5)
        for _ in range(50):
            opt.zero_grad()
            quadratic_grad(param)
            opt.step()
        assert param.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([10.0], dtype=np.float32))
        heavy = Parameter(np.array([10.0], dtype=np.float32))
        opt_plain = SGD([plain], lr=0.05)
        opt_heavy = SGD([heavy], lr=0.05, momentum=0.9)
        for _ in range(20):
            quadratic_grad(plain)
            opt_plain.step()
            plain.zero_grad()
            quadratic_grad(heavy)
            opt_heavy.step()
            heavy.zero_grad()
        assert abs(heavy.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_paper_defaults(self):
        opt = Adam([Parameter(np.zeros(1))])
        assert opt.lr == pytest.approx(2e-4)
        assert opt.beta1 == pytest.approx(0.5)
        assert opt.beta2 == pytest.approx(0.999)
        assert opt.eps == pytest.approx(1e-8)

    def test_first_step_size_is_lr(self):
        # With bias correction the very first Adam step has magnitude ~lr.
        param = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([param], lr=0.1)
        param.grad[...] = 123.0
        opt.step()
        assert param.data[0] == pytest.approx(0.9, abs=1e-4)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0], dtype=np.float32))
        opt = Adam([param], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            quadratic_grad(param)
            opt.step()
        assert param.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_zero_grad_clears_all(self):
        params = [Parameter(np.ones(3)), Parameter(np.ones(2))]
        opt = Adam(params)
        for param in params:
            param.grad[...] = 5.0
        opt.zero_grad()
        for param in params:
            np.testing.assert_array_equal(param.grad, 0.0)
