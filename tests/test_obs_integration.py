"""End-to-end observability: the no-perturbation gate, the Prometheus
endpoint, the status timing block, and the ``repro obs`` CLI.

The load-bearing test here is the byte-equality gate: a fully
instrumented run (telemetry + tracing on) must produce model artifacts,
loss logs, and eval reports *bitwise identical* to an uninstrumented
run.  Observability that perturbs the numbers is a bug by definition.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.gan import Dataset
from repro.obs.trace import Tracer
from repro.train import EvalSpec, Runner, TrainSpec
from repro.train.status import read_run_status, format_run_status
from tests.conftest import make_dataset

SIZE = 16


@pytest.fixture(scope="module")
def dataset():
    return Dataset(list(make_dataset(6, size=SIZE, design="a")))


def gate_spec() -> TrainSpec:
    return TrainSpec(
        name="gate", data="inline", scale="smoke", seed=3, epochs=2,
        order="shuffle", model={"base_filters": 4, "disc_filters": 4},
        eval=EvalSpec(every_epochs=1))


def run_once(root, dataset, *, instrumented: bool):
    runner = Runner.create(
        gate_spec(), root, dataset=dataset,
        telemetry=instrumented, trace=instrumented)
    result = runner.run()
    assert result.completed
    return root / "gate"


def assert_npz_bitwise_equal(path_a, path_b):
    with np.load(path_a) as a, np.load(path_b) as b:
        assert sorted(a.files) == sorted(b.files)
        for name in a.files:
            np.testing.assert_array_equal(a[name], b[name], err_msg=name)


class TestByteEqualityGate:
    @pytest.fixture(scope="class")
    def both_runs(self, dataset, tmp_path_factory):
        plain = run_once(tmp_path_factory.mktemp("plain"), dataset,
                         instrumented=False)
        traced = run_once(tmp_path_factory.mktemp("traced"), dataset,
                          instrumented=True)
        return plain, traced

    def test_instrumented_run_actually_observed(self, both_runs):
        plain, traced = both_runs
        assert not (plain / "telemetry.jsonl").exists()
        assert not (plain / "trace.jsonl").exists()
        telemetry = (traced / "telemetry.jsonl").read_text().splitlines()
        trace = (traced / "trace.jsonl").read_text().splitlines()
        assert len(telemetry) > 0 and len(trace) > 0
        events = {json.loads(line)["event"] for line in telemetry}
        assert {"step", "epoch", "eval", "checkpoint"} <= events
        names = {json.loads(line)["name"] for line in trace}
        assert {"train.step", "train.epoch", "train.eval",
                "train.checkpoint"} <= names

    def test_loss_and_eval_logs_byte_identical(self, both_runs):
        plain, traced = both_runs
        for name in ("losses.jsonl", "evals.jsonl", "spec.json"):
            assert ((plain / name).read_bytes()
                    == (traced / name).read_bytes()), name

    def test_exported_model_bitwise_identical(self, both_runs):
        plain, traced = both_runs
        exports = sorted(p.name for p in (plain / "export").iterdir())
        assert exports == sorted(
            p.name for p in (traced / "export").iterdir())
        for name in exports:
            if name.endswith(".npz"):
                assert_npz_bitwise_equal(plain / "export" / name,
                                         traced / "export" / name)

    def test_checkpoints_bitwise_identical(self, both_runs):
        plain, traced = both_runs
        names = sorted(p.name for p in (plain / "checkpoints").iterdir())
        assert names == sorted(
            p.name for p in (traced / "checkpoints").iterdir())
        compared = 0
        for name in names:
            if name.endswith(".npz"):
                assert_npz_bitwise_equal(plain / "checkpoints" / name,
                                         traced / "checkpoints" / name)
                compared += 1
        assert compared > 0


class TestStatusTiming:
    @pytest.fixture(scope="class")
    def run_dir(self, dataset, tmp_path_factory):
        return run_once(tmp_path_factory.mktemp("status"), dataset,
                        instrumented=True)

    def test_read_run_status_surfaces_timing(self, run_dir):
        info = read_run_status(run_dir)
        timing = info["timing"]
        assert timing is not None
        assert timing["steps_per_sec"] > 0
        assert timing["mean_step_ms"] > 0
        assert timing["eval_ms"] > 0

    def test_format_includes_timing_line(self, run_dir):
        text = format_run_status(read_run_status(run_dir))
        assert "timing" in text
        assert "steps/s" in text

    def test_untelemetered_run_has_no_timing(self, dataset,
                                             tmp_path_factory):
        run_dir = run_once(tmp_path_factory.mktemp("bare"), dataset,
                           instrumented=False)
        assert read_run_status(run_dir)["timing"] is None


class TestObsCli:
    @pytest.fixture(scope="class")
    def run_dir(self, dataset, tmp_path_factory):
        return run_once(tmp_path_factory.mktemp("cli"), dataset,
                        instrumented=True)

    def test_summary(self, run_dir, capsys):
        assert main(["obs", "summary", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out and "epoch folds" in out

    def test_summary_json(self, run_dir, capsys):
        assert main(["obs", "summary", str(run_dir), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["steps"]["count"] > 0
        assert document["throughput"]["steps_per_sec"] > 0

    def test_tail(self, run_dir, capsys):
        assert main(["obs", "tail", str(run_dir), "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_trace_summary(self, run_dir, capsys):
        assert main(["obs", "trace", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "train.step" in out and "count" in out

    def test_trace_chrome_export_loads(self, run_dir, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(["obs", "trace", str(run_dir),
                     "--chrome", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert len(document["traceEvents"]) > 0
        assert all({"name", "ph", "ts", "pid", "tid"} <= set(event)
                   for event in document["traceEvents"])

    def test_missing_telemetry_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no telemetry"):
            main(["obs", "summary", str(tmp_path)])

    def test_missing_trace_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace"):
            main(["obs", "trace", str(tmp_path)])


class TestServeMetricsEndpoint:
    @pytest.fixture()
    def client(self, tiny_model):
        from repro.serve import (
            BatchingEngine,
            ForecastCache,
            ForecastClient,
            ForecastServer,
            ModelRegistry,
        )

        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        engine = BatchingEngine(registry, max_batch=4, max_wait_ms=2.0,
                                cache=ForecastCache(16))
        with ForecastServer(engine, port=0) as running:
            yield ForecastClient(port=running.port)

    def test_default_metrics_is_prometheus_text(self, client):
        x = np.random.default_rng(8).normal(
            size=(4, SIZE, SIZE)).astype(np.float32)
        client.forecast("tiny", x=x)
        text = client.metrics_text()
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_request_latency_seconds histogram" in text
        assert 'serve_request_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "serve_queue_depth 0" in text
        assert "serve_cache_misses_total 1" in text
        assert 'http_requests_total{route="/v1/forecast"} 1' in text
        # Every non-comment line parses as `name{labels}? value`.
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert len(line.rsplit(" ", 1)) == 2, line

    def test_accept_json_returns_legacy_shape(self, client):
        x = np.random.default_rng(9).normal(
            size=(4, SIZE, SIZE)).astype(np.float32)
        client.forecast("tiny", x=x)
        legacy = client.metrics()
        assert legacy["engine"]["requests"] == 1
        assert legacy["engine"]["completed"] == 1
        assert legacy["http"]["requests_by_route"]["/v1/forecast"] == 1


class TestTracedServe:
    def test_serve_spans_cover_queue_batch_forward(self, tiny_model,
                                                   tmp_path):
        from repro.serve import BatchingEngine, ModelRegistry

        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        trace_path = tmp_path / "serve_trace.jsonl"
        with Tracer(trace_path) as tracer:
            engine = BatchingEngine(registry, max_batch=4, max_wait_ms=1.0,
                                    tracer=tracer)
            x = np.random.default_rng(10).normal(
                size=(4, SIZE, SIZE)).astype(np.float32)
            engine.start()
            try:
                engine.submit("tiny", x).result(timeout=10)
            finally:
                engine.stop()
        names = [json.loads(line)["name"]
                 for line in trace_path.read_text().splitlines()]
        assert "serve.queue_wait" in names
        assert "serve.batch" in names
        assert "serve.forward" in names
