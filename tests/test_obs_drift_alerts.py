"""Drift monitors, alert rules, and their serve/train wiring."""

import json
import math

import numpy as np
import pytest

from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    load_rules,
    parse_rule,
    read_alert_log,
)
from repro.obs.drift import (
    DriftMonitor,
    ReferenceProfile,
    hotspot_score,
    hotspot_scores,
    sampled_nrms,
)
from repro.obs.metrics import MetricsRegistry
from repro.viz.colors import utilization_to_rgb


def heat_image(level: float, size: int = 8) -> np.ndarray:
    """A uniform congestion heat map at ``level`` utilization, (H, W, 3)."""
    return np.broadcast_to(
        utilization_to_rgb(level), (size, size, 3)).astype(np.float64)


class TestHotspotScore:
    def test_uniform_hot_image_scores_one(self):
        assert hotspot_score(heat_image(0.9)) == pytest.approx(1.0)

    def test_uniform_cold_image_scores_zero(self):
        assert hotspot_score(heat_image(0.1)) == pytest.approx(0.0)

    def test_batch_helper_matches_scalar(self):
        batch = np.stack([heat_image(0.1), heat_image(0.9)])
        scores = hotspot_scores(batch)
        assert scores == [hotspot_score(batch[0]), hotspot_score(batch[1])]

    def test_non_rgb_falls_back_to_raw_values(self):
        raw = np.full((4, 4), 0.8)
        assert hotspot_score(raw) == pytest.approx(1.0)

    def test_sampled_nrms_zero_for_identical(self):
        image = heat_image(0.6)
        assert sampled_nrms(image, image) == pytest.approx(0.0, abs=1e-9)
        assert sampled_nrms(heat_image(0.9), heat_image(0.1)) > 0 \
            or math.isinf(sampled_nrms(heat_image(0.9), heat_image(0.1)))


class TestReferenceProfile:
    def test_shift_zero_for_same_distribution(self):
        scores = [0.1, 0.2, 0.3, 0.4, 0.5] * 10
        profile = ReferenceProfile.from_scores(scores)
        assert profile.shift(scores) == pytest.approx(0.0)

    def test_shift_one_for_disjoint_distributions(self):
        profile = ReferenceProfile.from_scores([0.05] * 50)
        assert profile.shift([0.95] * 50) == pytest.approx(1.0)

    def test_empty_windows_read_zero(self):
        profile = ReferenceProfile.from_scores([0.5] * 10)
        assert profile.shift([]) == 0.0
        assert ReferenceProfile().shift([0.5]) == 0.0

    def test_json_round_trip(self, tmp_path):
        profile = ReferenceProfile.from_scores(
            [0.1, 0.6, 0.6, 0.9], meta={"name": "m"})
        path = profile.save(tmp_path / "reference.json")
        loaded = ReferenceProfile.load(path)
        assert loaded.to_json() == profile.to_json()
        assert loaded.mean == profile.mean

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            ReferenceProfile.from_json({"kind": "something_else"})


class TestDriftMonitor:
    def test_shift_gauge_reacts_to_drifted_traffic(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(metrics=registry, window=16)
        monitor.set_reference(
            "m", ReferenceProfile.from_scores([0.0] * 50))
        for _ in range(8):
            monitor.observe("m", heat_image(0.1))
        low = registry.snapshot()["serve_drift_score_shift"]["model=m"]
        for _ in range(16):
            monitor.observe("m", heat_image(0.9))
        high = registry.snapshot()["serve_drift_score_shift"]["model=m"]
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(1.0)

    def test_novelty_rate(self):
        monitor = DriftMonitor(window=8)
        for index in range(4):
            monitor.observe("m", heat_image(0.5), digest=f"d{index}")
        assert monitor.status()["m"]["novelty_rate"] == 1.0
        for _ in range(4):
            monitor.observe("m", heat_image(0.5), digest="d0")
        assert monitor.status()["m"]["novelty_rate"] == 0.5

    def test_sampled_truth_window(self):
        monitor = DriftMonitor()
        image = heat_image(0.6)
        monitor.observe_truth("m", image, image)
        status = monitor.status()["m"]
        assert status["truth_samples"] == 1
        assert status["sampled_nrms"] == pytest.approx(0.0, abs=1e-9)

    def test_status_without_reference(self):
        monitor = DriftMonitor()
        monitor.observe("m", heat_image(0.5))
        status = monitor.status()["m"]
        assert status["has_reference"] is False
        assert status["score_shift"] is None


class TestAlertRules:
    def test_parse_and_validate(self):
        rule = parse_rule({"name": "r", "metric": "m", "op": ">",
                           "value": 1, "for_seconds": 5})
        assert rule.breached(2.0)
        assert not rule.breached(0.5)
        assert rule.describe() == "m > 1"

    @pytest.mark.parametrize("bad", [
        {"name": "", "metric": "m", "op": ">", "value": 1},
        {"name": "r", "metric": "", "op": ">", "value": 1},
        {"name": "r", "metric": "m", "op": "~", "value": 1},
        {"name": "r", "metric": "m", "op": ">", "value": 1,
         "for_seconds": -1},
        {"name": "r", "metric": "m", "op": ">", "value": 1,
         "severity": "loud"},
        {"name": "r", "metric": "m", "op": ">", "value": 1,
         "frequency": 2},
    ])
    def test_invalid_rules_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_load_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([
            {"name": "a", "metric": "m", "op": ">", "value": 1},
            {"name": "b", "metric": "n", "op": "<", "value": 0},
        ]))
        rules = load_rules(path)
        assert [rule.name for rule in rules] == ["a", "b"]
        path.write_text(json.dumps({"rules": [
            {"name": "a", "metric": "m", "op": ">", "value": 1}]}))
        assert len(load_rules(path)) == 1

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([
            {"name": "a", "metric": "m", "op": ">", "value": 1},
            {"name": "a", "metric": "n", "op": ">", "value": 1},
        ]))
        with pytest.raises(ValueError, match="duplicate"):
            load_rules(path)


class TestAlertManager:
    RULE = AlertRule(name="hot", metric="m", op=">", value=10.0,
                     for_seconds=5.0, severity="page", message="too hot")

    def test_for_duration_state_machine(self, tmp_path):
        log = tmp_path / "alerts.jsonl"
        manager = AlertManager([self.RULE], log_path=log)
        # Breach at t=0: pending, not yet firing.
        assert manager.evaluate({"m": 20.0}, now=0.0) == []
        assert manager.active() == []
        # Still breached at t=5: held for for_seconds -> fires.
        events = manager.evaluate({"m": 25.0}, now=5.0)
        assert [event.state for event in events] == ["firing"]
        active = manager.active()
        assert active[0]["rule"] == "hot"
        assert active[0]["value"] == 25.0
        # Recovery resolves.
        events = manager.evaluate({"m": 1.0}, now=6.0)
        assert [event.state for event in events] == ["resolved"]
        assert manager.active() == []
        # The transitions landed in alerts.jsonl.
        lines, skipped = read_alert_log(log)
        assert [line["state"] for line in lines] == ["firing", "resolved"]
        assert skipped == 0

    def test_blip_shorter_than_for_duration_never_fires(self):
        manager = AlertManager([self.RULE])
        manager.evaluate({"m": 20.0}, now=0.0)
        manager.evaluate({"m": 1.0}, now=2.0)    # recovered early
        manager.evaluate({"m": 20.0}, now=3.0)   # pending restarts
        assert manager.evaluate({"m": 20.0}, now=7.0) == []  # held only 4s
        assert manager.evaluate({"m": 20.0}, now=8.0) != []  # now 5s

    def test_missing_metric_is_not_breached(self):
        manager = AlertManager([self.RULE])
        assert manager.evaluate({}, now=0.0) == []
        assert manager.status()["hot"]["last_value"] is None

    def test_firing_gauge_mirrors_state(self):
        registry = MetricsRegistry()
        rule = AlertRule(name="now", metric="m", op=">", value=1.0)
        manager = AlertManager([rule], metrics=registry)
        assert registry.snapshot()["obs_alert_firing"]["rule=now"] == 0
        manager.evaluate({"m": 5.0}, now=0.0)    # for_seconds=0: immediate
        assert registry.snapshot()["obs_alert_firing"]["rule=now"] == 1
        manager.evaluate({"m": 0.0}, now=1.0)
        assert registry.snapshot()["obs_alert_firing"]["rule=now"] == 0

    def test_read_alert_log_skips_torn_line(self, tmp_path):
        log = tmp_path / "alerts.jsonl"
        log.write_text('{"rule": "a", "state": "firing"}\n{"rule": "b", ')
        events, skipped = read_alert_log(log)
        assert len(events) == 1
        assert skipped == 1

    def test_read_alert_log_missing_file(self, tmp_path):
        assert read_alert_log(tmp_path / "nope.jsonl") == ([], 0)


class TestServeWiring:
    def test_engine_feeds_drift_on_miss_and_hit(self, tiny_model):
        from repro.serve import (
            BatchingEngine,
            ForecastCache,
            ModelRegistry,
        )

        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        metrics = MetricsRegistry()
        monitor = DriftMonitor(metrics=metrics)
        engine = BatchingEngine(registry, cache=ForecastCache(8),
                                metrics=metrics, drift=monitor)
        x = np.zeros((4, 16, 16), dtype=np.float32)
        with engine:
            engine.forecast("tiny", x)      # miss
            engine.forecast("tiny", x)      # hit
        status = monitor.status()["tiny"]
        assert status["observations"] == 2
        # Identical inputs: one novel digest out of two observations.
        assert status["novelty_rate"] == 0.5

    def test_http_alerts_and_telemetry_endpoints(self, tiny_model,
                                                 tmp_path):
        import urllib.request

        from repro.serve import BatchingEngine, ForecastServer, \
            ModelRegistry

        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        metrics = MetricsRegistry()
        monitor = DriftMonitor(metrics=metrics)
        monitor.set_reference(
            "tiny", ReferenceProfile.from_scores([0.0] * 20))
        engine = BatchingEngine(registry, metrics=metrics, drift=monitor)
        rules = [AlertRule(name="drifting",
                           metric="serve_drift_score_shift{model=tiny}",
                           op=">", value=0.5)]
        obs_dir = tmp_path / "obs"
        with ForecastServer(engine, port=0, obs_dir=obs_dir,
                            alert_rules=rules,
                            publish_interval=60.0) as server:
            def get(route):
                with urllib.request.urlopen(
                        f"{server.url}{route}", timeout=10) as response:
                    return json.loads(response.read())

            payload = get("/alerts")
            assert payload["active"] == []
            assert "drifting" in payload["rules"]
            # Drive drifted traffic (hot forecasts vs an all-cold
            # reference) through the engine, then re-poll.
            x = np.zeros((4, 16, 16), dtype=np.float32)
            engine.forecast("tiny", x)
            payload = get("/alerts")
            assert payload["drift"]["tiny"]["observations"] == 1
            telemetry = get("/telemetry")
            assert telemetry["role"] == "serve"
            assert "serve_requests_total" in telemetry["families"]
            # The publisher dropped a snapshot file at start().
            snapshots = list((obs_dir / "telemetry").glob("serve-*.json"))
            assert len(snapshots) == 1


class TestRunnerReference:
    def test_runner_writes_reference_profile(self, tmp_path, make_dataset):
        from repro.train import EvalSpec, Runner, TrainSpec

        dataset = make_dataset(4, size=16)
        spec = TrainSpec(
            name="ref-run", data="inline", scale="smoke", seed=2, epochs=1,
            order="stream",
            model={"base_filters": 4, "disc_filters": 4},
            eval=EvalSpec(every_epochs=1, batch_size=2))
        metrics = MetricsRegistry()
        runner = Runner(spec, tmp_path / "run", dataset=dataset,
                        metrics=metrics)
        result = runner.run()
        assert result.completed
        profile = ReferenceProfile.load(tmp_path / "run" / "reference.json")
        assert profile.count == 4
        assert profile.meta["name"] == "ref-run"
        exported = tmp_path / "run" / "export" / "ref-run-reference.json"
        assert exported.exists()
        # Fleet counters moved.
        snapshot = metrics.snapshot()
        assert snapshot["train_steps_total"] > 0
        assert snapshot["train_epochs_total"] == 1
        assert snapshot["train_evals_total"] == 1


class TestTolerantReaders:
    def test_read_telemetry_skips_torn_final_line(self, tmp_path):
        from repro.obs.render import read_jsonl, read_telemetry, \
            tail_telemetry

        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"event": "step", "ms": 1.0}\n'
                        '{"event": "step", "ms": 2.0}\n'
                        '{"event": "st')
        records, skipped = read_jsonl(path)
        assert len(records) == 2
        assert skipped == 1
        assert len(read_telemetry(path)) == 2
        assert [r["ms"] for r in tail_telemetry(path, count=1)] == [2.0]

    def test_read_spans_skips_torn_final_line(self, tmp_path):
        from repro.obs.trace import read_spans, write_chrome_trace

        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a", "ph": "X", "ts_us": 0, '
                        '"dur_us": 5}\n{"name": "b", "ph"')
        spans = read_spans(path)
        assert [span["name"] for span in spans] == ["a"]
        out = tmp_path / "chrome.json"
        assert write_chrome_trace(path, out) == 1

    def test_train_status_skips_torn_final_line(self, tmp_path):
        from repro.train.status import _tail_records

        path = tmp_path / "losses.jsonl"
        path.write_text('{"epoch": 0, "event": "epoch"}\n{"epoch": 1, "ev')
        found = _tail_records(
            path, {"epoch": lambda doc: doc.get("event") == "epoch"})
        assert found["epoch"] == {"epoch": 0, "event": "epoch"}
