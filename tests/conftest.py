"""Shared fixtures: a tiny trained model for serving/inference tests."""

import numpy as np
import pytest

from repro.gan import Pix2Pix, Pix2PixConfig


def make_tiny_model(seed: int = 1, image_size: int = 16,
                    train_steps: int = 2) -> Pix2Pix:
    """A 16px model with a couple of training steps applied.

    The steps matter: they move the BatchNorm running statistics off their
    init values, so eval-mode inference exercises real running stats.
    """
    model = Pix2Pix(Pix2PixConfig(image_size=image_size, base_filters=4,
                                  disc_filters=4, seed=seed))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(1, 4, image_size, image_size)).astype(np.float32)
    y = np.tanh(rng.normal(size=(1, 3, image_size, image_size))
                ).astype(np.float32)
    for _ in range(train_steps):
        model.train_step(x, y)
    return model


@pytest.fixture(scope="session")
def tiny_model() -> Pix2Pix:
    return make_tiny_model()


@pytest.fixture(scope="session")
def make_model():
    """The tiny-model factory, injectable where a second model is needed.

    (Injected as a fixture rather than imported: ``import conftest`` is
    ambiguous when pytest collects both tests/ and benchmarks/.)
    """
    return make_tiny_model


@pytest.fixture()
def tiny_inputs():
    rng = np.random.default_rng(42)
    return rng.normal(size=(12, 4, 16, 16)).astype(np.float32)
