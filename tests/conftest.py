"""Shared fixtures and factories: tiny samples, datasets, models, checkpoints.

The plain functions (:func:`make_sample`, :func:`make_dataset`,
:func:`make_tiny_model`) are importable as ``from tests.conftest import
...`` for module-scoped fixtures; the ``make_dataset`` /
``make_checkpoint`` factory fixtures inject the same builders where a
test only needs them at run time.  Every tiny-dataset builder the suite
uses lives here — one definition, one shape convention.
"""

import numpy as np
import pytest

from repro.gan import Dataset, Pix2Pix, Pix2PixConfig, Sample


def make_sample(design: str = "d", size: int = 8, seed: int = 0,
                congestion: float = 0.5) -> Sample:
    """One random (but seed-deterministic) image-pair sample."""
    rng = np.random.default_rng(seed)
    return Sample(
        design=design,
        x=rng.normal(size=(4, size, size)).astype(np.float32),
        y=np.tanh(rng.normal(size=(3, size, size))).astype(np.float32),
        true_congestion=congestion,
        placer_options={"seed": seed, "alpha_t": None, "inner_num": 1.0,
                        "place_algorithm": "bounding_box"},
        route_seconds=0.5,
        place_seconds=1.0,
    )


def make_dataset(count: int = 5, size: int = 8, design: str = "d",
                 seed0: int = 0) -> Dataset:
    """``count`` samples of one design, seeded ``seed0 .. seed0+count-1``."""
    return Dataset([make_sample(design, size=size, seed=seed0 + i)
                    for i in range(count)])


def make_tiny_model(seed: int = 1, image_size: int = 16,
                    train_steps: int = 2) -> Pix2Pix:
    """A 16px model with a couple of training steps applied.

    The steps matter: they move the BatchNorm running statistics off their
    init values, so eval-mode inference exercises real running stats.
    """
    model = Pix2Pix(Pix2PixConfig(image_size=image_size, base_filters=4,
                                  disc_filters=4, seed=seed))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(1, 4, image_size, image_size)).astype(np.float32)
    y = np.tanh(rng.normal(size=(1, 3, image_size, image_size))
                ).astype(np.float32)
    for _ in range(train_steps):
        model.train_step(x, y)
    return model


@pytest.fixture(scope="session")
def tiny_model() -> Pix2Pix:
    return make_tiny_model()


@pytest.fixture(scope="session")
def make_model():
    """The tiny-model factory, injectable where a second model is needed.

    (Injected as a fixture rather than imported: ``import conftest`` is
    ambiguous when pytest collects both tests/ and benchmarks/.)
    """
    return make_tiny_model


@pytest.fixture(scope="session", name="make_dataset")
def make_dataset_fixture():
    """The tiny-dataset factory as an injectable fixture."""
    return make_dataset


@pytest.fixture(scope="session", name="make_checkpoint")
def make_checkpoint_fixture(tmp_path_factory):
    """Factory writing tiny trained checkpoints to disk.

    ``factory(name, directory=..., model=..., seed=..., ...)`` returns the
    checkpoint path; omit ``directory`` for a fresh temp dir, pass one to
    collect several checkpoints in a single registry directory.
    """
    def factory(name: str = "model", *, directory=None, model=None,
                seed: int = 1, image_size: int = 16,
                train_steps: int = 2):
        if model is None:
            model = make_tiny_model(seed=seed, image_size=image_size,
                                    train_steps=train_steps)
        if directory is None:
            directory = tmp_path_factory.mktemp("checkpoints")
        path = directory / f"{name}.npz"
        model.save(path)
        return path

    return factory


@pytest.fixture()
def tiny_inputs():
    rng = np.random.default_rng(42)
    return rng.normal(size=(12, 4, 16, 16)).astype(np.float32)
