"""Finite-difference verification of every analytic gradient.

These tests are the correctness contract of the numpy framework: each layer's
input and parameter gradients must match central differences to tight
tolerance (float64 inputs keep the comparison clean).
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    BCEWithLogitsLoss,
    Conv2d,
    ConvTranspose2d,
    L1Loss,
    LeakyReLU,
    MSELoss,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import (
    check_layer_input_grad,
    check_layer_param_grads,
    numerical_gradient,
)

TOL = 2e-3


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _f64(layer):
    """Promote a layer's parameters to float64 for clean finite differences."""
    for _, param in layer.named_parameters():
        param.data = param.data.astype(np.float64)
        param.grad = param.grad.astype(np.float64)
    return layer


class TestConvGradients:
    @pytest.mark.parametrize("stride,pad,kernel", [(2, 1, 4), (1, 1, 3), (1, 0, 2)])
    def test_conv2d_input_grad(self, rng, stride, pad, kernel):
        layer = _f64(Conv2d(2, 3, kernel=kernel, stride=stride, pad=pad, rng=rng))
        x = rng.normal(size=(2, 2, 6, 6))
        assert check_layer_input_grad(layer, x) < TOL

    def test_conv2d_param_grads(self, rng):
        layer = _f64(Conv2d(2, 3, kernel=3, stride=1, pad=1, rng=rng))
        x = rng.normal(size=(1, 2, 5, 5))
        errors = check_layer_param_grads(layer, x)
        assert max(errors.values()) < TOL

    @pytest.mark.parametrize("stride,pad,kernel", [(2, 1, 4), (1, 1, 3)])
    def test_conv_transpose_input_grad(self, rng, stride, pad, kernel):
        layer = _f64(ConvTranspose2d(3, 2, kernel=kernel, stride=stride,
                                     pad=pad, rng=rng))
        x = rng.normal(size=(1, 3, 4, 4))
        assert check_layer_input_grad(layer, x) < TOL

    def test_conv_transpose_param_grads(self, rng):
        layer = _f64(ConvTranspose2d(2, 2, kernel=4, stride=2, pad=1, rng=rng))
        x = rng.normal(size=(1, 2, 4, 4))
        errors = check_layer_param_grads(layer, x)
        assert max(errors.values()) < TOL


class TestBatchNormGradients:
    def test_input_grad_training(self, rng):
        layer = _f64(BatchNorm2d(3))
        x = rng.normal(size=(2, 3, 4, 4))
        assert check_layer_input_grad(layer, x) < TOL

    def test_param_grads(self, rng):
        layer = _f64(BatchNorm2d(2))
        layer.gamma.data[...] = rng.normal(1.0, 0.1, size=2)
        x = rng.normal(size=(2, 2, 4, 4))
        errors = check_layer_param_grads(layer, x)
        assert max(errors.values()) < TOL

    def test_input_grad_eval_mode(self, rng):
        layer = _f64(BatchNorm2d(2))
        layer(rng.normal(size=(4, 2, 4, 4)))  # populate running stats
        layer.eval()
        x = rng.normal(size=(2, 2, 4, 4))
        assert check_layer_input_grad(layer, x) < TOL


class TestActivationGradients:
    @pytest.mark.parametrize("layer_factory", [
        lambda: LeakyReLU(0.2), Tanh, Sigmoid,
    ])
    def test_input_grad(self, rng, layer_factory):
        layer = layer_factory()
        # Keep values away from the LeakyReLU kink where FD is undefined.
        x = rng.normal(size=(1, 2, 4, 4))
        x[np.abs(x) < 0.05] = 0.1
        assert check_layer_input_grad(layer, x) < TOL


class TestCompositeGradients:
    def test_small_network_end_to_end(self, rng):
        model = Sequential(
            _f64(Conv2d(1, 2, kernel=3, stride=1, pad=1, rng=rng)),
            LeakyReLU(0.2),
            _f64(Conv2d(2, 1, kernel=3, stride=1, pad=1, rng=rng)),
            Tanh(),
        )
        x = rng.normal(size=(1, 1, 5, 5))
        assert check_layer_input_grad(model, x) < TOL


class TestLossGradients:
    @pytest.mark.parametrize("loss_factory,target", [
        (BCEWithLogitsLoss, 1.0),
        (BCEWithLogitsLoss, 0.0),
        (MSELoss, None),
    ])
    def test_loss_grad_matches_fd(self, rng, loss_factory, target):
        loss = loss_factory()
        pred = rng.normal(size=(2, 1, 3, 3))
        tgt = (np.full_like(pred, target) if target is not None
               else rng.normal(size=pred.shape))

        def value(arr):
            return loss.forward(arr, tgt)

        value(pred)
        analytic = loss.backward()
        numeric = numerical_gradient(value, pred.copy())
        np.testing.assert_allclose(analytic, numeric, atol=TOL)

    def test_l1_grad_away_from_kink(self, rng):
        loss = L1Loss()
        pred = rng.normal(size=(1, 1, 4, 4))
        tgt = pred + np.where(rng.random(pred.shape) > 0.5, 1.0, -1.0)
        loss.forward(pred, tgt)
        analytic = loss.backward()
        numeric = numerical_gradient(lambda arr: loss.forward(arr, tgt),
                                     pred.copy())
        np.testing.assert_allclose(analytic, numeric, atol=TOL)
