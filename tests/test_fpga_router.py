"""Channel graph and PathFinder router tests."""

import numpy as np
import pytest

from repro.fpga import (
    BlockType,
    DesignSpec,
    PathFinderRouter,
    Placement,
    PlacerOptions,
    RouterOptions,
    SimulatedAnnealingPlacer,
    generate_design,
    paper_architecture,
)
from repro.fpga.arch import FpgaArchitecture, Site
from repro.fpga.router import ChannelGraph, estimate_channel_width


@pytest.fixture(scope="module")
def design():
    spec = DesignSpec("routed", 60, 20, 220)
    return generate_design(spec, cluster_size=4, seed=11)


@pytest.fixture(scope="module")
def arch(design):
    from repro.fpga.generators import minimum_architecture_size

    return paper_architecture(minimum_architecture_size(design),
                              channel_width=16)


@pytest.fixture(scope="module")
def placement(design, arch):
    return Placement.random(design, arch, np.random.default_rng(5))


class TestChannelGraph:
    def test_node_counts(self):
        arch = FpgaArchitecture(4, 3)
        graph = ChannelGraph(arch)
        assert graph.num_h == 4 * 4   # W * (H+1)
        assert graph.num_v == 5 * 3   # (W+1) * H
        assert graph.num_nodes == graph.num_h + graph.num_v

    def test_indices_bijective(self):
        arch = FpgaArchitecture(4, 3)
        graph = ChannelGraph(arch)
        seen = set()
        for x in range(1, 5):
            for y in range(0, 4):
                seen.add(graph.h_index(x, y))
        for x in range(0, 5):
            for y in range(1, 4):
                seen.add(graph.v_index(x, y))
        assert seen == set(range(graph.num_nodes))

    def test_out_of_range_raises(self):
        graph = ChannelGraph(FpgaArchitecture(4, 3))
        with pytest.raises(ValueError):
            graph.h_index(0, 0)
        with pytest.raises(ValueError):
            graph.v_index(5, 1)

    def test_adjacency_is_symmetric(self):
        graph = ChannelGraph(FpgaArchitecture(5, 4))
        for node, neighbors in enumerate(graph.adjacency_lists):
            for neighbor in neighbors:
                assert node in graph.adjacency_lists[neighbor]

    def test_adjacent_segments_touch_geometrically(self):
        graph = ChannelGraph(FpgaArchitecture(5, 4))
        for node, neighbors in enumerate(graph.adjacency_lists):
            for neighbor in neighbors:
                dx = abs(graph.coord_x[node] - graph.coord_x[neighbor])
                dy = abs(graph.coord_y[node] - graph.coord_y[neighbor])
                assert dx + dy <= 1.0 + 1e-9

    def test_graph_is_connected(self):
        import networkx as nx

        graph = ChannelGraph(FpgaArchitecture(4, 4))
        g = nx.Graph()
        g.add_nodes_from(range(graph.num_nodes))
        for node, neighbors in enumerate(graph.adjacency_lists):
            g.add_edges_from((node, n) for n in neighbors)
        assert nx.is_connected(g)

    def test_tile_access_four_segments(self):
        graph = ChannelGraph(FpgaArchitecture(4, 4))
        access = graph.tile_access(2, 2)
        assert len(access) == 4

    def test_io_access_single_ring_segment(self):
        arch = FpgaArchitecture(4, 4)
        graph = ChannelGraph(arch)
        left = graph.block_access(Site(0, 2), BlockType.IO)
        assert left == [graph.v_index(0, 2)]
        bottom = graph.block_access(Site(3, 0), BlockType.IO)
        assert bottom == [graph.h_index(3, 0)]

    def test_macro_access_spans_rows(self):
        arch = FpgaArchitecture(8, 8, mem_columns=(3,), mem_height=2)
        graph = ChannelGraph(arch)
        access = graph.block_access(Site(3, 1), BlockType.MEM)
        # Two stacked tiles share one horizontal segment: 4 + 4 - 1 = 7.
        assert len(access) == 7


class TestRouter:
    def test_routes_every_net(self, design, arch, placement):
        result = PathFinderRouter(design, arch, placement).route()
        assert set(result.net_trees) == {net.id for net in design.nets}
        assert all(result.net_trees.values())

    def test_tree_is_connected_through_driver(self, design, arch, placement):
        """Every tree component must touch a segment reachable from the
        driver pin: paths may fan out of different driver access segments,
        joining electrically at the pin itself."""
        import networkx as nx

        router = PathFinderRouter(design, arch, placement)
        result = router.route()
        graph = result.graph
        for net in design.nets[:50]:
            tree = result.net_trees[net.id]
            nodes = set(tree)
            g = nx.Graph()
            g.add_nodes_from(nodes)
            driver_pin = -1
            g.add_node(driver_pin)
            for access in router._block_access(net.driver):
                if access in nodes:
                    g.add_edge(driver_pin, access)
            for node in nodes:
                for neighbor in graph.adjacency_lists[node]:
                    if neighbor in nodes:
                        g.add_edge(node, neighbor)
            assert nx.is_connected(g), f"net {net.id} tree disconnected"

    def test_tree_touches_all_terminals(self, design, arch, placement):
        router = PathFinderRouter(design, arch, placement)
        result = router.route()
        for net in design.nets[:50]:
            tree = result.net_trees[net.id]
            for terminal in net.terminals:
                access = set(router._block_access(terminal))
                assert access & tree, (
                    f"net {net.id} terminal {terminal} unreached")

    def test_occupancy_equals_tree_sum(self, design, arch, placement):
        result = PathFinderRouter(design, arch, placement).route()
        manual = np.zeros_like(result.occupancy)
        for tree in result.net_trees.values():
            for node in tree:
                manual[node] += 1
        np.testing.assert_array_equal(manual, result.occupancy)

    def test_wide_channels_converge(self, design, placement, arch):
        wide = FpgaArchitecture(
            arch.width, arch.height, io_capacity=arch.io_capacity,
            mem_columns=arch.mem_columns, mul_columns=arch.mul_columns,
            mem_height=arch.mem_height, mul_height=arch.mul_height,
            channel_width=200)
        wide_placement = Placement(design, wide, list(placement.site_of))
        result = PathFinderRouter(design, wide, wide_placement).route()
        assert result.converged
        assert result.max_utilization <= 1.0

    def test_narrow_channels_spread_or_overflow(self, design, placement, arch):
        narrow = FpgaArchitecture(
            arch.width, arch.height, io_capacity=arch.io_capacity,
            mem_columns=arch.mem_columns, mul_columns=arch.mul_columns,
            mem_height=arch.mem_height, mul_height=arch.mul_height,
            channel_width=2)
        narrow_placement = Placement(design, narrow, list(placement.site_of))
        result = PathFinderRouter(
            design, narrow, narrow_placement,
            options=RouterOptions(max_iterations=3)).route()
        # With W=2 the design cannot route; PathFinder must report overuse.
        assert not result.converged or result.max_utilization <= 1.0

    def test_negotiation_reduces_overuse(self, design, arch, placement):
        one_shot = PathFinderRouter(
            design, arch, placement,
            options=RouterOptions(max_iterations=1)).route()
        negotiated = PathFinderRouter(
            design, arch, placement,
            options=RouterOptions(max_iterations=10)).route()
        assert negotiated.overuse <= one_shot.overuse

    def test_utilization_views_cover_all_segments(self, design, arch,
                                                  placement):
        result = PathFinderRouter(design, arch, placement).route()
        h = result.h_utilization()
        v = result.v_utilization()
        assert h.shape == (arch.width, arch.height + 1)
        assert v.shape == (arch.width + 1, arch.height)
        total = h.sum() + v.sum()
        assert total == pytest.approx(result.utilization.sum())

    def test_good_placement_less_congested_than_random(self, design, arch):
        """The causal property the whole paper relies on."""
        placed = SimulatedAnnealingPlacer(
            design, arch, PlacerOptions(seed=2)).place().placement
        random_placement = Placement.random(design, arch,
                                            np.random.default_rng(3))
        good = PathFinderRouter(design, arch, placed).route()
        bad = PathFinderRouter(design, arch, random_placement).route()
        assert good.wirelength < bad.wirelength
        assert good.mean_utilization < bad.mean_utilization

    def test_route_seconds_recorded(self, design, arch, placement):
        result = PathFinderRouter(design, arch, placement).route()
        assert result.route_seconds > 0


class TestChannelWidthEstimate:
    def test_estimate_is_routable(self, design, arch, placement):
        width = estimate_channel_width(design, arch, placement)
        sized = FpgaArchitecture(
            arch.width, arch.height, io_capacity=arch.io_capacity,
            mem_columns=arch.mem_columns, mul_columns=arch.mul_columns,
            mem_height=arch.mem_height, mul_height=arch.mul_height,
            channel_width=width)
        sized_placement = Placement(design, sized, list(placement.site_of))
        result = PathFinderRouter(design, sized, sized_placement).route()
        assert result.converged

    def test_margin_scales_estimate(self, design, arch, placement):
        tight = estimate_channel_width(design, arch, placement, margin=1.0)
        loose = estimate_channel_width(design, arch, placement, margin=2.0)
        assert loose >= tight
