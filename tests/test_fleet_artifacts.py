"""Content-addressed artifact store: identity, dedup, format ingestion."""

import json

import numpy as np
import pytest

from tests.conftest import make_dataset, make_tiny_model
from repro.fleet import ArtifactError, ArtifactStore


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestIdentity:
    def test_put_bytes_roundtrip(self, store):
        ref = store.put_bytes(b"hello fleet", name="greeting.txt")
        assert store.read_bytes(ref.digest) == b"hello fleet"
        got = store.get(ref.digest)
        assert got.name == "greeting.txt"
        assert got.size_bytes == len(b"hello fleet")

    def test_identical_content_dedups(self, store):
        a = store.put_bytes(b"same", name="a", kind="blob")
        b = store.put_bytes(b"same", name="a", kind="blob")
        assert a.digest == b.digest
        assert len(store) == 1
        # Different name -> different artifact, same blob underneath.
        c = store.put_bytes(b"same", name="c", kind="blob")
        assert c.digest != a.digest
        assert c.files[0]["sha256"] == a.files[0]["sha256"]

    def test_digest_is_content_addressed_not_time_addressed(self, tmp_path):
        """The worker-count-invariance cornerstone: identity is pure
        content, so two stores built independently agree digest-for-digest."""
        refs = []
        for which in ("one", "two"):
            store = ArtifactStore(tmp_path / which)
            refs.append(store.put_bytes(b"payload", name="p",
                                        kind="forecast",
                                        meta={"model_id": "m"}))
        assert refs[0].digest == refs[1].digest

    def test_meta_changes_identity(self, store):
        a = store.put_bytes(b"x", name="n", meta={"k": 1})
        b = store.put_bytes(b"x", name="n", meta={"k": 2})
        assert a.digest != b.digest


class TestResolve:
    def test_resolve_by_prefix_and_name(self, store):
        ref = store.put_bytes(b"data", name="thing")
        assert store.resolve(ref.digest[:10]).digest == ref.digest
        assert store.resolve("thing").digest == ref.digest

    def test_ambiguous_resolve_is_an_error(self, store):
        store.put_bytes(b"1", name="dup")
        store.put_bytes(b"2", name="dup")
        with pytest.raises(ArtifactError, match="ambiguous"):
            store.resolve("dup")

    def test_missing_artifact_and_blob(self, store):
        with pytest.raises(ArtifactError, match="no artifact"):
            store.get("0" * 64)
        with pytest.raises(ArtifactError, match="no artifact matching"):
            store.resolve("nothing")


class TestFormatIngestion:
    def test_put_checkpoint_with_reference_sidecar(self, store, tmp_path):
        model = make_tiny_model()
        path = tmp_path / "cong.npz"
        model.save(path)
        (tmp_path / "cong-reference.json").write_text(
            json.dumps({"mean": 0.5}))
        ref = store.put_checkpoint(path)
        assert ref.kind == "checkpoint"
        assert ref.meta["model_id"] == "cong"
        assert ref.meta["has_reference"] is True
        assert {entry["path"] for entry in ref.files} \
            == {"cong.npz", "cong-reference.json"}
        # Materialized checkpoint loads back bit-exactly.
        out = store.materialize(ref.digest, tmp_path / "restored")
        restored = type(model).load(out / "cong.npz")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 16, 16)).astype(np.float32)
        assert np.array_equal(restored.forecast(x), model.forecast(x))

    def test_put_dataset_store(self, store, tmp_path):
        from repro.data.store import ShardedStore

        ShardedStore.from_dataset(tmp_path / "data",
                                  make_dataset(count=4, size=8),
                                  shard_size=2)
        ref = store.put_dataset_store(tmp_path / "data")
        assert ref.kind == "dataset"
        assert ref.meta["num_samples"] == 4
        assert any(entry["path"] == "manifest.json"
                   for entry in ref.files)
        # Materialize and reopen as a store.
        out = store.materialize(ref.digest, tmp_path / "data2")
        reopened = ShardedStore.open(out)
        assert reopened.num_samples == 4
        assert reopened.verify() == []

    def test_put_run_dir_keeps_record_drops_checkpoint_states(
            self, store, tmp_path):
        run = tmp_path / "myrun"
        (run / "checkpoints").mkdir(parents=True)
        (run / "export").mkdir()
        (run / "spec.json").write_text(json.dumps({"name": "myrun"}))
        (run / "status.json").write_text(
            json.dumps({"state": "done", "best_value": 0.25}))
        (run / "losses.jsonl").write_text('{"epoch": 1}\n')
        (run / "export" / "model.npz").write_bytes(b"npzbytes")
        (run / "checkpoints" / "state-000010.npz").write_bytes(b"huge")
        ref = store.put_run_dir(run)
        paths = {entry["path"] for entry in ref.files}
        assert "spec.json" in paths and "export/model.npz" in paths
        assert not any(path.startswith("checkpoints/") for path in paths)
        assert ref.meta["state"] == "done"
        assert ref.meta["best_value"] == 0.25


class TestVerify:
    def test_clean_store_verifies(self, store):
        store.put_bytes(b"abc", name="a")
        store.put_bytes(b"def", name="b")
        assert store.verify() == []

    def test_corrupted_blob_detected(self, store):
        ref = store.put_bytes(b"precious", name="p")
        blob = store.blob_path(ref.files[0]["sha256"])
        blob.chmod(0o644)
        blob.write_bytes(b"tampered")
        problems = store.verify()
        assert problems and "corrupted" in problems[0]

    def test_missing_blob_detected(self, store):
        ref = store.put_bytes(b"gone", name="g")
        store.blob_path(ref.files[0]["sha256"]).unlink()
        problems = store.verify(ref.digest)
        assert problems and "missing blob" in problems[0]

    def test_stats_counts_kinds(self, store):
        store.put_bytes(b"1", name="a", kind="forecast")
        store.put_bytes(b"2", name="b", kind="forecast")
        store.put_bytes(b"3", name="c", kind="blob")
        stats = store.stats()
        assert stats["artifacts"] == 3
        assert stats["kinds"] == {"blob": 1, "forecast": 2}
        assert stats["blob_bytes"] == 3
