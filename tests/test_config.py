"""Scale preset tests."""

import pytest

from repro.config import DEFAULT, PAPER, SMOKE, custom_scale, get_scale


class TestPresets:
    def test_paper_preset_matches_publication(self):
        assert PAPER.image_size == 256          # w = 256
        assert PAPER.base_filters == 64
        assert PAPER.epochs == 250              # 250 epochs
        assert PAPER.placements_per_design == 200
        assert PAPER.finetune_pairs == 10       # ten transfer pairs
        assert PAPER.l1_weight == 50.0
        assert PAPER.connect_weight == 0.1      # lambda
        assert PAPER.learning_rate == 2e-4
        assert PAPER.adam_beta1 == 0.5
        assert PAPER.adam_beta2 == 0.999
        assert PAPER.adam_eps == 1e-8
        assert PAPER.batch_size == 1
        assert PAPER.top_k == 10

    def test_get_scale_by_name(self):
        assert get_scale("paper") is PAPER
        assert get_scale("default") is DEFAULT
        assert get_scale("smoke") is SMOKE

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale() is SMOKE

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("gigantic")

    def test_scaled_luts_respects_bounds(self):
        assert SMOKE.scaled_luts(10_000) == SMOKE.design_max_luts
        assert SMOKE.scaled_luts(1) == SMOKE.design_min_luts
        assert PAPER.scaled_luts(563) == 563  # identity at paper scale

    def test_custom_scale_override(self):
        quick = custom_scale(DEFAULT, epochs=1)
        assert quick.epochs == 1
        assert quick.image_size == DEFAULT.image_size
        assert DEFAULT.epochs != 1  # original untouched (frozen)
