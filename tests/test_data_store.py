"""Sharded store tests: manifest, integrity, merge, legacy conversion."""

import json

import numpy as np
import pytest

from repro.data import (
    ShardedStore,
    StoreError,
    sample_content_hash,
)
from repro.data.store import MANIFEST_NAME
from repro.gan import Dataset
from tests.conftest import make_dataset, make_sample


class TestContentHash:
    def test_stable_across_equal_samples(self):
        assert (sample_content_hash(make_sample(seed=3))
                == sample_content_hash(make_sample(seed=3)))

    def test_sensitive_to_content(self):
        a = make_sample(seed=3)
        b = make_sample(seed=4)
        assert sample_content_hash(a) != sample_content_hash(b)

    def test_ignores_wall_clock_timings(self):
        a = make_sample(seed=3)
        b = make_sample(seed=3)
        b.route_seconds = 99.0
        b.place_seconds = 99.0
        assert sample_content_hash(a) == sample_content_hash(b)


class TestShardedStore:
    def test_append_shards_at_shard_size(self, tmp_path):
        store = ShardedStore.create(tmp_path / "s", shard_size=2)
        store.extend(make_dataset(5))
        store.flush()
        assert store.num_samples == 5
        assert store.num_shards == 3   # 2 + 2 + 1
        sizes = [shard["num_samples"]
                 for shard in store.manifest["shards"]]
        assert sizes == [2, 2, 1]

    def test_roundtrip_preserves_samples(self, tmp_path):
        dataset = make_dataset(4)
        ShardedStore.from_dataset(tmp_path / "s", dataset, shard_size=3)
        loaded = ShardedStore.open(tmp_path / "s").to_dataset()
        assert len(loaded) == 4
        for original, restored in zip(dataset, loaded):
            np.testing.assert_array_equal(original.x, restored.x)
            np.testing.assert_array_equal(original.y, restored.y)
            assert original.placer_options == restored.placer_options

    def test_sample_hashes_ordered(self, tmp_path):
        dataset = make_dataset(4)
        store = ShardedStore.from_dataset(tmp_path / "s", dataset,
                                          shard_size=2)
        assert store.sample_hashes == [sample_content_hash(s)
                                       for s in dataset]

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no manifest"):
            ShardedStore.open(tmp_path / "nope")

    def test_create_over_existing_raises(self, tmp_path):
        ShardedStore.create(tmp_path / "s")
        with pytest.raises(StoreError, match="already exists"):
            ShardedStore.create(tmp_path / "s")

    def test_shape_mismatch_rejected(self, tmp_path):
        store = ShardedStore.create(tmp_path / "s", shard_size=4)
        store.append(make_sample(size=8))
        with pytest.raises(StoreError, match="does not match"):
            store.append(make_sample(size=16))

    def test_no_staging_files_left_behind(self, tmp_path):
        store = ShardedStore.from_dataset(tmp_path / "s", make_dataset(3),
                                          shard_size=2)
        leftovers = [p for p in store.root.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_interrupted_build_keeps_completed_shards(self, tmp_path):
        store = ShardedStore.create(tmp_path / "s", shard_size=2)
        store.extend(make_dataset(3))
        # No flush: one full shard written, one sample still buffered.
        reopened = ShardedStore.open(tmp_path / "s")
        assert reopened.num_samples == 2
        assert reopened.verify() == []


class TestVerify:
    def test_clean_store_verifies(self, tmp_path):
        store = ShardedStore.from_dataset(tmp_path / "s", make_dataset(5),
                                          shard_size=2)
        assert store.verify() == []

    def test_detects_corrupted_shard(self, tmp_path):
        store = ShardedStore.from_dataset(tmp_path / "s", make_dataset(3),
                                          shard_size=2)
        shard = store.root / store.manifest["shards"][0]["name"]
        shard.write_bytes(shard.read_bytes()[:-7] + b"garbage")
        problems = store.verify()
        assert any("sha256 mismatch" in p for p in problems)

    def test_detects_missing_shard(self, tmp_path):
        store = ShardedStore.from_dataset(tmp_path / "s", make_dataset(3),
                                          shard_size=2)
        (store.root / store.manifest["shards"][1]["name"]).unlink()
        problems = store.verify()
        assert any("file missing" in p for p in problems)

    def test_detects_count_tampering(self, tmp_path):
        store = ShardedStore.from_dataset(tmp_path / "s", make_dataset(3),
                                          shard_size=3)
        manifest = json.loads((store.root / MANIFEST_NAME).read_text())
        manifest["num_samples"] = 7
        (store.root / MANIFEST_NAME).write_text(json.dumps(manifest))
        problems = ShardedStore.open(store.root).verify()
        assert any("num_samples" in p for p in problems)


class TestMergeAndConvert:
    def test_merge_combines_and_reshards(self, tmp_path):
        a = ShardedStore.from_dataset(
            tmp_path / "a", make_dataset(3, design="a"), shard_size=2)
        b = ShardedStore.from_dataset(
            tmp_path / "b", make_dataset(2, design="b"), shard_size=2)
        merged = ShardedStore.create(tmp_path / "m", shard_size=4)
        merged.merge_from(a)
        merged.merge_from(b)
        merged.flush()
        assert merged.num_samples == 5
        assert merged.designs == ["a", "b"]
        assert merged.verify() == []
        assert merged.sample_hashes == a.sample_hashes + b.sample_hashes

    def test_merge_rejects_mismatched_image_size(self, tmp_path):
        a = ShardedStore.from_dataset(tmp_path / "a",
                                      make_dataset(2, size=8))
        b = ShardedStore.from_dataset(tmp_path / "b",
                                      make_dataset(2, size=16))
        merged = ShardedStore.create(tmp_path / "m")
        merged.merge_from(a)
        with pytest.raises(StoreError, match="image size"):
            merged.merge_from(b)

    def test_convert_legacy_archive(self, tmp_path):
        dataset = make_dataset(4)
        archive = tmp_path / "legacy.npz"
        dataset.save(archive)
        store = ShardedStore.convert_archive(archive, tmp_path / "s",
                                             shard_size=3)
        assert store.num_samples == 4
        assert store.verify() == []
        assert archive.exists()   # legacy file left in place
        assert store.manifest["provenance"][0]["converted_from"] == \
            "legacy.npz"
        restored = store.to_dataset()
        np.testing.assert_array_equal(dataset[2].x, restored[2].x)


class TestDatasetSatellites:
    def test_save_is_atomic_no_temp_left(self, tmp_path):
        dataset = make_dataset(2)
        path = tmp_path / "data.npz"
        dataset.save(path)
        assert path.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["data.npz"]
        assert len(Dataset.load(path)) == 2

    def test_save_overwrites_atomically(self, tmp_path):
        path = tmp_path / "data.npz"
        make_dataset(2).save(path)
        make_dataset(5).save(path)
        assert len(Dataset.load(path)) == 5

    def test_shuffled_is_independent_copy(self):
        dataset = make_dataset(4)
        rng = np.random.default_rng(0)
        shuffled = dataset.shuffled(rng)
        assert sorted(id(s) for s in shuffled) == \
            sorted(id(s) for s in dataset)
        shuffled.append(make_sample(seed=99))
        assert len(dataset) == 4           # original unchanged
        dataset.append(make_sample(seed=100))
        assert len(shuffled) == 5          # copy unchanged

    def test_shuffled_empty_dataset(self):
        shuffled = Dataset().shuffled(np.random.default_rng(0))
        shuffled.append(make_sample())
        assert len(shuffled) == 1
