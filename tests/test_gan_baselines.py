"""RUDY baseline forecaster tests."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.flows import build_design_bundle
from repro.fpga import PathFinderRouter, Placement
from repro.fpga.generators import scaled_suite
from repro.gan.baselines import (
    RudyForecaster,
    rudy_channel_utilization,
    rudy_map,
)
from repro.gan.metrics import image_congestion_score, per_pixel_accuracy


@pytest.fixture(scope="module")
def bundle():
    spec = scaled_suite(SMOKE)[3]  # SHA
    return build_design_bundle(spec, SMOKE, num_placements=4, seed=6)


@pytest.fixture(scope="module")
def routed(bundle):
    return [
        PathFinderRouter(bundle.netlist, bundle.arch, placement).route()
        for placement in bundle.placements
    ]


class TestRudyMap:
    def test_nonnegative_and_nonzero(self, bundle):
        demand = rudy_map(bundle.netlist, bundle.placements[0])
        assert demand.min() >= 0
        assert demand.sum() > 0

    def test_total_demand_is_placement_invariant_lower_bound(self, bundle):
        """Each net always contributes q*(w+h)/(w*h)*area = q*(w+h), which
        grows with bbox size, so spread placements have more total demand."""
        compact = rudy_map(bundle.netlist, bundle.placements[0]).sum()
        assert compact > 0

    def test_channel_estimates_match_shapes(self, bundle, routed):
        h_est, v_est = rudy_channel_utilization(bundle.netlist,
                                                bundle.placements[0])
        assert h_est.shape == routed[0].h_utilization().shape
        assert v_est.shape == routed[0].v_utilization().shape

    def test_correlates_with_routed_utilization(self, bundle, routed):
        """RUDY is a real estimator: per-segment correlation with the
        routed ground truth must be clearly positive."""
        h_est, v_est = rudy_channel_utilization(bundle.netlist,
                                                bundle.placements[0])
        est = np.concatenate([h_est.ravel(), v_est.ravel()])
        true = np.concatenate([routed[0].h_utilization().ravel(),
                               routed[0].v_utilization().ravel()])
        corr = np.corrcoef(est, true)[0, 1]
        assert corr > 0.3


class TestRudyForecaster:
    def test_calibration_improves_scale(self, bundle, routed):
        forecaster = RudyForecaster(bundle.netlist, bundle.arch,
                                    bundle.layout)
        gain = forecaster.calibrate(
            bundle.placements,
            [(r.h_utilization(), r.v_utilization()) for r in routed])
        assert gain > 0
        # Calibrated estimates should land near the routed mean utilization.
        score = forecaster.congestion_score(bundle.placements[0])
        assert score == pytest.approx(routed[0].mean_utilization, rel=0.8)

    def test_forecast_is_valid_heatmap(self, bundle, routed):
        forecaster = RudyForecaster(bundle.netlist, bundle.arch,
                                    bundle.layout)
        forecaster.calibrate(
            bundle.placements,
            [(r.h_utilization(), r.v_utilization()) for r in routed])
        image = forecaster.forecast(bundle.placements[0])
        assert image.shape == (bundle.layout.image_size,
                               bundle.layout.image_size, 3)
        score = image_congestion_score(image, bundle.channel_mask)
        assert 0.0 <= score <= 1.0

    def test_forecast_beats_zero_predictor_in_mse(self, bundle, routed):
        """Least-squares calibration guarantees the RUDY estimate beats the
        all-zero predictor in mean squared utilization error over the
        calibration pool."""
        forecaster = RudyForecaster(bundle.netlist, bundle.arch,
                                    bundle.layout)
        forecaster.calibrate(
            bundle.placements,
            [(r.h_utilization(), r.v_utilization()) for r in routed])
        rudy_se = 0.0
        zero_se = 0.0
        for placement, result in zip(bundle.placements, routed):
            h_est, v_est = rudy_channel_utilization(bundle.netlist,
                                                    placement)
            est = forecaster.calibration * np.concatenate(
                [h_est.ravel(), v_est.ravel()])
            true = np.concatenate([result.h_utilization().ravel(),
                                   result.v_utilization().ravel()])
            rudy_se += float(((est - true) ** 2).sum())
            zero_se += float((true ** 2).sum())
        assert rudy_se < zero_se

    def test_calibrate_shape_mismatch_raises(self, bundle):
        forecaster = RudyForecaster(bundle.netlist, bundle.arch,
                                    bundle.layout)
        with pytest.raises(ValueError):
            forecaster.calibrate(bundle.placements, [])

    def test_ranking_signal(self, bundle, routed):
        """RUDY scores must broadly track routed congestion across
        placements (it is the baseline the cGAN is compared against)."""
        forecaster = RudyForecaster(bundle.netlist, bundle.arch,
                                    bundle.layout)
        scores = [forecaster.congestion_score(p) for p in bundle.placements]
        truths = [r.mean_utilization for r in routed]
        best_pred = int(np.argmin(scores))
        worst_true = int(np.argmax(truths))
        # Weak but meaningful: RUDY's best pick is not the true worst.
        assert best_pred != worst_true or len(set(truths)) == 1
