"""End-to-end example-script tests (smoke scale, real subprocesses).

Each example must run to completion from a clean interpreter, print its
report, and leave its artifacts on disk — the contract a downstream user
experiences first.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, tmp_home: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ, REPRO_SCALE="smoke")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=EXAMPLES_DIR.parent)


@pytest.fixture(scope="module")
def out_dir():
    return EXAMPLES_DIR / "out"


class TestExamples:
    def test_quickstart(self, tmp_path, out_dir):
        result = run_example("quickstart.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "speedup" in result.stdout
        assert (out_dir / "quickstart" / "test0_forecast.png").exists()

    def test_paper_figures(self, tmp_path, out_dir):
        result = run_example("paper_figures.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "channel width factor" in result.stdout
        for panel in ("fig2a_img_floor", "fig2b_img_place",
                      "fig2d_img_route", "fig2e_route_minus_place",
                      "fig4a_img_connect", "fig4b_img_connect"):
            assert (out_dir / "figures" / f"{panel}.png").exists(), panel

    def test_placement_exploration(self, tmp_path, out_dir):
        result = run_example("placement_exploration.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "rank correlation" in result.stdout
        assert (out_dir / "exploration" / "overall-min_forecast.png").exists()

    def test_live_forecast(self, tmp_path, out_dir):
        result = run_example("live_forecast.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "predicted congestion" in result.stdout
        gif = out_dir / "realtime" / "live_forecast.gif"
        assert gif.exists()
        assert gif.read_bytes()[:6] == b"GIF89a"

    def test_ablation(self, tmp_path, out_dir):
        result = run_example("ablation_l1_skip.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "L1+skip" in result.stdout
        assert (out_dir / "ablation" / "truth.png").exists()

    def test_serve_quickstart(self, tmp_path, out_dir):
        result = run_example("serve_quickstart.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "cached=True" in result.stdout
        assert "forecasts/s" in result.stdout
        assert (out_dir / "serve" / "forecast.png").exists()

    def test_data_pipeline(self, tmp_path, out_dir):
        result = run_example("data_pipeline.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "verify: ok" in result.stdout
        assert "peak residency" in result.stdout
        assert (out_dir / "data" / "store" / "manifest.json").exists()

    def test_eval_report(self, tmp_path, out_dir):
        result = run_example("eval_report.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "byte-identical re-run: True" in result.stdout
        assert "compare: ok" in result.stdout
        assert (out_dir / "eval" / "report_all.json").exists()
        assert (out_dir / "eval" / "report_holdout.json").exists()

    def test_train_run(self, tmp_path, out_dir):
        result = run_example("train_run.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "exact resume verified" in result.stdout
        assert "interrupted" in result.stdout
        run_dir = out_dir / "train" / "runs" / "killed"
        assert (run_dir / "spec.json").exists()
        assert (run_dir / "losses.jsonl").exists()
        assert (run_dir / "export" / "killed.npz").exists()

    def test_obs_quickstart(self, tmp_path, out_dir):
        result = run_example("obs_quickstart.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "steps/s" in result.stdout
        assert "traceEvents" in result.stdout
        assert "gemms" in result.stdout
        assert "# TYPE serve_requests_total counter" in result.stdout
        run_dir = out_dir / "obs" / "runs" / "demo"
        assert (run_dir / "telemetry.jsonl").exists()
        assert (run_dir / "trace.jsonl").exists()
        assert (out_dir / "obs" / "trace_chrome.json").exists()
        assert (out_dir / "obs" / "metrics.prom").exists()

    def test_obs_fleet(self, tmp_path, out_dir):
        result = run_example("obs_fleet.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "fleet train_steps_total" in result.stdout
        assert 'train_steps_total{worker="sweep-fleet-a"}' in result.stdout
        assert "repro obs top" in result.stdout
        assert "ALERT firing: forecast-drift" in result.stdout
        fleet_dir = out_dir / "fleet"
        assert (fleet_dir / "fleet.prom").exists()
        alerts = (fleet_dir / "alerts.jsonl").read_text().splitlines()
        assert any('"state": "firing"' in line for line in alerts)
        telemetry = fleet_dir / "sweep" / "telemetry"
        assert len(list(telemetry.glob("sweep-*.json"))) == 2

    def test_fleet_quickstart(self, tmp_path, out_dir):
        result = run_example("fleet_quickstart.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "digests byte-identical across worker counts" in result.stdout
        assert "cached repeat" in result.stdout
        assert "repro obs top" in result.stdout
        assert "fleet_routed_total" in result.stdout
        quickstart = out_dir / "fleet_quickstart"
        assert (quickstart / "registry" / "artifacts").is_dir()
        assert list((quickstart / "telemetry" / "telemetry")
                    .glob("*.json"))

    def test_packing_flow(self, tmp_path, out_dir):
        result = run_example("packing_flow.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "nets absorbed" in result.stdout
        assert (out_dir / "packing" / "img_route.png").exists()
