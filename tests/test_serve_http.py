"""HTTP API + client round-trips on an ephemeral port."""

import threading

import numpy as np
import pytest

import repro
from repro.gan.dataset import make_input_stack
from repro.serve import (
    BatchingEngine,
    ClientError,
    ForecastCache,
    ForecastClient,
    ForecastServer,
    ModelRegistry,
)


@pytest.fixture()
def server(tiny_model):
    registry = ModelRegistry()
    registry.register("tiny", tiny_model)
    engine = BatchingEngine(registry, max_batch=4, max_wait_ms=2.0,
                            cache=ForecastCache(16))
    with ForecastServer(engine, port=0) as running:
        yield running
    assert not engine.running


@pytest.fixture()
def client(server):
    return ForecastClient(port=server.port)


class TestEndpoints:
    def test_healthz_reports_version_and_models(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["models"] == ["tiny"]
        assert health["uptime_seconds"] >= 0

    def test_models_metadata(self, client):
        models = client.models()
        assert len(models) == 1
        assert models[0]["model_id"] == "tiny"
        assert models[0]["image_size"] == 16
        assert models[0]["num_parameters"] > 0

    def test_forecast_roundtrip_matches_direct(self, client, tiny_model):
        x = np.random.default_rng(3).normal(
            size=(4, 16, 16)).astype(np.float32)
        reply = client.forecast("tiny", x=x)
        assert reply.model == "tiny"
        assert reply.forecast.shape == (16, 16, 3)
        assert reply.cached is False
        assert reply.latency_ms > 0
        # JSON round-trips float32 exactly (decimal repr is exact for
        # binary floats), so even over HTTP the forecast is bitwise.
        np.testing.assert_array_equal(reply.forecast,
                                      tiny_model.forecast(x))

    def test_repeat_request_is_cached(self, client):
        x = np.random.default_rng(4).normal(
            size=(4, 16, 16)).astype(np.float32)
        assert client.forecast("tiny", x=x).cached is False
        assert client.forecast("tiny", x=x).cached is True

    def test_forecast_from_rendered_images(self, client, tiny_model):
        rng = np.random.default_rng(5)
        place = rng.random((16, 16, 3)).astype(np.float32)
        connect = rng.random((16, 16)).astype(np.float32)
        reply = client.forecast("tiny", place_image=place,
                                connect_image=connect, connect_weight=0.1)
        expected = tiny_model.forecast(make_input_stack(place, connect, 0.1))
        np.testing.assert_array_equal(reply.forecast, expected)

    def test_metrics_exposes_engine_cache_and_http(self, client):
        x = np.random.default_rng(6).normal(
            size=(4, 16, 16)).astype(np.float32)
        client.forecast("tiny", x=x)
        metrics = client.metrics()
        assert metrics["engine"]["requests"] >= 1
        assert metrics["engine"]["cache"]["capacity"] == 16
        assert metrics["http"]["requests_by_route"]["/v1/forecast"] >= 1
        # Observability satellites: batch-size histogram + cache counters
        # are served over /metrics like every other counter.
        histogram = metrics["engine"]["batch_occupancy_histogram"]
        assert sum(histogram.values()) == metrics["engine"]["batches"]
        assert (metrics["engine"]["cache_hits"]
                + metrics["engine"]["cache_misses"]) >= 1

    def test_concurrent_http_clients_share_batches(self, server,
                                                   tiny_model):
        rng = np.random.default_rng(7)
        xs = rng.normal(size=(8, 4, 16, 16)).astype(np.float32)
        replies: list = [None] * len(xs)

        def query(index: int) -> None:
            replies[index] = ForecastClient(port=server.port).forecast(
                "tiny", x=xs[index])

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(len(xs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index, reply in enumerate(replies):
            np.testing.assert_array_equal(
                reply.forecast, tiny_model.forecast(xs[index]))


class TestErrors:
    def test_unknown_model_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.forecast("nope", x=np.zeros((4, 16, 16), np.float32))
        assert excinfo.value.status == 404

    def test_wrong_shape_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.forecast("tiny", x=np.zeros((4, 8, 8), np.float32))
        assert excinfo.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._request("/v2/nothing")
        assert excinfo.value.status == 404

    def test_bad_json_400(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/v1/forecast", data=b"not json{",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_input_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._request("/v1/forecast", {"model": "tiny"})
        assert excinfo.value.status == 400

    def test_client_side_argument_check(self, client):
        with pytest.raises(ValueError, match="exactly one"):
            client.forecast("tiny")

    def test_forecast_timeout_returns_504(self, tiny_model):
        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        # A long batching window plus a zero timeout guarantees the future
        # is still pending when the handler gives up.
        engine = BatchingEngine(registry, max_batch=8, max_wait_ms=500.0)
        with ForecastServer(engine, port=0, forecast_timeout=0.0) as running:
            with pytest.raises(ClientError) as excinfo:
                ForecastClient(port=running.port).forecast(
                    "tiny", x=np.zeros((4, 16, 16), np.float32))
        assert excinfo.value.status == 504


class TestShutdown:
    def test_wedged_serving_thread_raises_on_stop(self, tiny_model):
        """Regression: stop() used to join the serving thread and move
        on even when the join timed out, silently leaking a zombie
        thread that still held the port."""
        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        engine = BatchingEngine(registry)
        server = ForecastServer(engine, port=0)
        server.start()
        try:
            # Swap in a stand-in thread that outlives the join window —
            # exactly what a handler wedged in a slow write looks like.
            wedged = threading.Thread(target=lambda: threading.Event()
                                      .wait(5.0), daemon=True)
            wedged.start()
            real_thread, server._thread = server._thread, wedged
            with pytest.raises(RuntimeError, match="did not stop"):
                server.stop(timeout=0.1)
        finally:
            real_thread.join(10.0)
            if engine.running:
                engine.stop()

    def test_clean_stop_does_not_raise(self, tiny_model):
        registry = ModelRegistry()
        registry.register("tiny", tiny_model)
        engine = BatchingEngine(registry)
        server = ForecastServer(engine, port=0)
        server.start()
        server.stop()               # well-behaved thread: no error
        assert not engine.running
