#!/usr/bin/env python3
"""Regenerate the golden evaluation fixtures under tests/fixtures/eval/.

Writes three committed artifacts:

* ``store/``  — a fixed-seed 8-sample, 2-design sharded dataset;
* ``model.npz`` — a tiny fixed-seed checkpoint (3 training steps);
* ``golden_report.json`` — the pinned eval report for that pair.

Run from the repo root after an *intentional* metric or model change::

    PYTHONPATH=src python tests/fixtures/regen_eval_golden.py

and commit the diff.  The golden regression test
(``tests/test_eval_golden.py``) fails with a per-metric diff whenever a
code change moves any pinned metric by more than its tolerance.
"""

import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from repro.data import ShardedStore                       # noqa: E402
from repro.eval import (                                  # noqa: E402
    CheckpointForecaster,
    evaluate_store,
    evaluation_report,
    write_report,
)
from repro.gan import Dataset                             # noqa: E402
from tests.conftest import make_sample, make_tiny_model   # noqa: E402

FIXTURE_DIR = Path(__file__).parent / "eval"

#: Fixture shape constants — change these and the goldens move.
IMAGE_SIZE = 16
SHARD_SIZE = 3
MODEL_SEED = 7
TRAIN_STEPS = 3
BATCH_SIZE = 4


def build_dataset() -> Dataset:
    return Dataset(
        [make_sample("alpha", size=IMAGE_SIZE, seed=i) for i in range(5)]
        + [make_sample("beta", size=IMAGE_SIZE, seed=100 + i)
           for i in range(3)])


def main() -> None:
    store_dir = FIXTURE_DIR / "store"
    if store_dir.exists():
        shutil.rmtree(store_dir)
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)

    store = ShardedStore.from_dataset(store_dir, build_dataset(),
                                      shard_size=SHARD_SIZE)
    print(f"store: {store.num_samples} samples in {store.num_shards} "
          f"shard(s)")

    model = make_tiny_model(seed=MODEL_SEED, image_size=IMAGE_SIZE,
                            train_steps=TRAIN_STEPS)
    model.save(FIXTURE_DIR / "model.npz")

    forecaster = CheckpointForecaster.from_checkpoint(
        FIXTURE_DIR / "model.npz")
    result = evaluate_store(store, forecaster, batch_size=BATCH_SIZE)
    report = evaluation_report(store, result, forecaster.identity,
                               batch_size=BATCH_SIZE)
    # Pin a repo-relative checkpoint path so regeneration on any machine
    # produces the same bytes.
    report["model"]["path"] = "tests/fixtures/eval/model.npz"
    write_report(FIXTURE_DIR / "golden_report.json", report)
    print("golden metrics:")
    for name in sorted(report["metrics"]):
        print(f"  {name:<24} {report['metrics'][name]:.6f}")


if __name__ == "__main__":
    main()
