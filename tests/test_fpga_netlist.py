"""Netlist model and synthetic generator tests."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import get_scale
from repro.fpga import (
    PAPER_SUITE,
    Block,
    BlockType,
    DesignSpec,
    Net,
    Netlist,
    generate_design,
    scaled_suite,
)
from repro.fpga.generators import minimum_architecture_size


def tiny_netlist() -> Netlist:
    blocks = [
        Block(0, "in0", BlockType.IO),
        Block(1, "clb0", BlockType.CLB),
        Block(2, "clb1", BlockType.CLB),
        Block(3, "out0", BlockType.IO),
    ]
    nets = [
        Net(0, "n0", 0, (1,)),
        Net(1, "n1", 1, (2,)),
        Net(2, "n2", 2, (3, 1)),
    ]
    return Netlist("tiny", blocks, nets)


class TestNetlistModel:
    def test_counts(self):
        netlist = tiny_netlist()
        assert netlist.num_blocks == 4
        assert netlist.num_nets == 3
        assert netlist.count_type(BlockType.CLB) == 2
        assert netlist.count_type(BlockType.IO) == 2

    def test_nets_of_block_index(self):
        netlist = tiny_netlist()
        assert set(netlist.nets_of_block(1)) == {0, 1, 2}
        assert set(netlist.nets_of_block(3)) == {2}

    def test_average_fanout(self):
        assert tiny_netlist().average_fanout() == pytest.approx(4 / 3)

    def test_rejects_self_driving_net(self):
        blocks = [Block(0, "a", BlockType.CLB), Block(1, "b", BlockType.CLB)]
        with pytest.raises(ValueError, match="drives itself"):
            Netlist("bad", blocks, [Net(0, "n", 0, (0,))])

    def test_rejects_empty_net(self):
        blocks = [Block(0, "a", BlockType.CLB)]
        with pytest.raises(ValueError, match="no sinks"):
            Netlist("bad", blocks, [Net(0, "n", 0, ())])

    def test_rejects_dangling_reference(self):
        blocks = [Block(0, "a", BlockType.CLB)]
        with pytest.raises(ValueError, match="unknown block"):
            Netlist("bad", blocks, [Net(0, "n", 0, (5,))])

    def test_rejects_non_dense_ids(self):
        blocks = [Block(1, "a", BlockType.CLB)]
        with pytest.raises(ValueError, match="dense"):
            Netlist("bad", blocks, [])

    def test_to_networkx_edges(self):
        graph = tiny_netlist().to_networkx()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(2, 3)
        assert isinstance(graph, nx.DiGraph)

    def test_levelize_monotone_on_dag(self):
        levels = tiny_netlist().levelize()
        # Net n2 feeds block 1 back, creating a cycle; levelize must still
        # terminate and keep the forward chain monotone.
        assert levels[0] == 0
        assert levels[3] >= levels[2]


class TestPaperSuite:
    def test_eight_designs_with_published_stats(self):
        assert len(PAPER_SUITE) == 8
        by_name = {spec.name: spec for spec in PAPER_SUITE}
        assert by_name["diffeq1"].num_luts == 563
        assert by_name["SHA"].num_nets == 10_910
        assert by_name["bfly"].num_ffs == 1_748

    def test_scaled_suite_preserves_size_ordering(self):
        scale = get_scale("default")
        specs = scaled_suite(scale)
        assert [s.name for s in specs] == [s.name for s in PAPER_SUITE]
        luts = [s.num_luts for s in specs]
        paper_luts = [s.num_luts for s in PAPER_SUITE]
        # Clamping may flatten the extremes but must never invert order.
        for i in range(len(luts) - 1):
            if paper_luts[i] < paper_luts[i + 1]:
                assert luts[i] <= luts[i + 1]


class TestGenerator:
    def test_deterministic_per_seed(self):
        spec = DesignSpec("x", 100, 30, 300)
        a = generate_design(spec, cluster_size=4, seed=7)
        b = generate_design(spec, cluster_size=4, seed=7)
        assert [n.terminals for n in a.nets] == [n.terminals for n in b.nets]

    def test_different_seeds_differ(self):
        spec = DesignSpec("x", 100, 30, 300)
        a = generate_design(spec, cluster_size=4, seed=1)
        b = generate_design(spec, cluster_size=4, seed=2)
        assert [n.terminals for n in a.nets] != [n.terminals for n in b.nets]

    def test_clb_count_matches_packing(self):
        spec = DesignSpec("x", 100, 30, 300)
        netlist = generate_design(spec, cluster_size=4, seed=0)
        assert netlist.count_type(BlockType.CLB) == 25

    def test_absorption_shrinks_external_nets(self):
        spec = DesignSpec("x", 100, 30, 400)
        packed = generate_design(spec, cluster_size=4, seed=0, absorption=0.6)
        flat = generate_design(spec, cluster_size=4, seed=0, absorption=0.0)
        assert packed.num_nets < flat.num_nets
        assert packed.num_nets == pytest.approx(400 * 0.4, abs=30)

    def test_contains_all_block_types(self):
        spec = DesignSpec("x", 200, 50, 600)
        netlist = generate_design(spec, cluster_size=4, seed=0)
        for block_type in BlockType:
            assert netlist.count_type(block_type) >= 1

    def test_stats_carried(self):
        spec = DesignSpec("x", 123, 45, 300)
        netlist = generate_design(spec, seed=0)
        assert netlist.stats.num_luts == 123
        assert netlist.stats.num_ffs == 45

    def test_invalid_locality_raises(self):
        with pytest.raises(ValueError):
            generate_design(DesignSpec("x", 10, 5, 20), locality=1.5)

    def test_invalid_absorption_raises(self):
        with pytest.raises(ValueError):
            generate_design(DesignSpec("x", 10, 5, 20), absorption=1.0)

    @settings(max_examples=10, deadline=None)
    @given(
        luts=st.integers(20, 400),
        nets=st.integers(50, 800),
        seed=st.integers(0, 10_000),
    )
    def test_generated_netlists_always_validate(self, luts, nets, seed):
        """Netlist construction re-validates invariants, so surviving the
        constructor for arbitrary specs/seeds is the property."""
        spec = DesignSpec("prop", luts, luts // 3, nets)
        netlist = generate_design(spec, cluster_size=4, seed=seed)
        assert netlist.num_nets > 0
        assert netlist.num_blocks > 0

    def test_minimum_architecture_fits(self):
        spec = DesignSpec("x", 150, 40, 500)
        netlist = generate_design(spec, cluster_size=4, seed=0)
        from repro.fpga import paper_architecture

        width = minimum_architecture_size(netlist)
        arch = paper_architecture(width)
        assert netlist.count_type(BlockType.CLB) <= arch.capacity(BlockType.CLB)
        assert netlist.count_type(BlockType.IO) <= arch.capacity(BlockType.IO)
        assert netlist.count_type(BlockType.MEM) <= arch.capacity(BlockType.MEM)
        assert netlist.count_type(BlockType.MUL) <= arch.capacity(BlockType.MUL)
