"""Packing substrate tests: flat synthesis and VPack-style clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.arch import BlockType
from repro.fpga.packing import (
    FlatNetlist,
    PrimitiveType,
    generate_flat_design,
    generate_packed_design,
    pack,
)


@pytest.fixture(scope="module")
def flat():
    return generate_flat_design("packme", num_luts=80, num_ffs=30,
                                num_nets=260, seed=5)


class TestFlatGeneration:
    def test_primitive_counts(self, flat):
        assert flat.count_type(PrimitiveType.LUT) == 80
        assert flat.count_type(PrimitiveType.FF) == 30
        assert flat.count_type(PrimitiveType.IO) >= 4

    def test_net_count_close_to_request(self, flat):
        assert len(flat.nets) == 260

    def test_ff_latch_nets_exist(self, flat):
        """Every FF is latched from a LUT by a dedicated 2-terminal net."""
        lut_ids = {p.id for p in flat.primitives
                   if p.type is PrimitiveType.LUT}
        ff_ids = {p.id for p in flat.primitives
                  if p.type is PrimitiveType.FF}
        latched = {net.sinks[0] for net in flat.nets
                   if len(net.sinks) == 1 and net.driver in lut_ids
                   and net.sinks[0] in ff_ids}
        assert latched == ff_ids

    def test_deterministic(self):
        a = generate_flat_design("d", 40, 10, 100, seed=3)
        b = generate_flat_design("d", 40, 10, 100, seed=3)
        assert [(n.driver, n.sinks) for n in a.nets] == \
               [(n.driver, n.sinks) for n in b.nets]

    def test_nets_of_index(self, flat):
        index = flat.nets_of()
        net = flat.nets[0]
        assert net.id in index[net.driver]
        for sink in net.sinks:
            assert net.id in index[sink]


class TestPack:
    def test_every_primitive_assigned_once(self, flat):
        result = pack(flat, cluster_size=8)
        seen: set[int] = set()
        for cluster in result.clusters:
            for prim in cluster:
                assert prim not in seen
                seen.add(prim)
        packable = {p.id for p in flat.primitives
                    if p.type in (PrimitiveType.LUT, PrimitiveType.FF)}
        assert seen == packable

    def test_cluster_lut_capacity_respected(self, flat):
        cluster_size = 8
        result = pack(flat, cluster_size=cluster_size)
        for cluster in result.clusters:
            luts = sum(1 for p in cluster
                       if flat.primitives[p].type is PrimitiveType.LUT)
            assert luts <= cluster_size

    def test_clb_count_near_optimal(self, flat):
        result = pack(flat, cluster_size=8)
        min_clbs = -(-flat.count_type(PrimitiveType.LUT) // 8)
        assert min_clbs <= len(result.clusters) <= 2 * min_clbs

    def test_absorption_accounting(self, flat):
        result = pack(flat, cluster_size=8)
        assert (result.absorbed_nets + result.external_nets
                == len(flat.nets))
        assert result.netlist.num_nets == result.external_nets

    def test_absorption_grows_with_cluster_size(self, flat):
        small = pack(flat, cluster_size=2)
        large = pack(flat, cluster_size=10)
        assert large.absorption >= small.absorption

    def test_absorption_justifies_generator_default(self, flat):
        """The direct generator assumes ~0.62 absorption; the real packer
        on a comparable flat netlist must land in that neighbourhood."""
        result = pack(flat, cluster_size=10)
        assert 0.30 <= result.absorption <= 0.85

    def test_packed_netlist_validates(self, flat):
        result = pack(flat, cluster_size=8)
        # Netlist constructor re-validates; also block types must be sane.
        assert result.netlist.count_type(BlockType.CLB) == \
            len(result.clusters)
        assert result.netlist.count_type(BlockType.IO) == \
            flat.count_type(PrimitiveType.IO)

    def test_no_self_driving_packed_nets(self, flat):
        result = pack(flat, cluster_size=8)
        for net in result.netlist.nets:
            assert net.driver not in net.sinks

    def test_invalid_cluster_size_raises(self, flat):
        with pytest.raises(ValueError):
            pack(flat, cluster_size=0)

    @settings(max_examples=8, deadline=None)
    @given(luts=st.integers(8, 60), cluster=st.integers(1, 12),
           seed=st.integers(0, 99))
    def test_pack_invariants_property(self, luts, cluster, seed):
        flat = generate_flat_design("prop", luts, luts // 3,
                                    luts * 3, seed=seed)
        result = pack(flat, cluster_size=cluster)
        # Conservation: all packable primitives clustered, nets partitioned.
        packed_prims = sum(len(c) for c in result.clusters)
        assert packed_prims == (flat.count_type(PrimitiveType.LUT)
                                + flat.count_type(PrimitiveType.FF))
        assert (result.absorbed_nets + result.external_nets
                == len(flat.nets))


class TestEndToEnd:
    def test_generate_packed_design_places_and_routes(self):
        """The packed output drops into the standard place & route flow."""
        from repro.fpga import (
            PathFinderRouter,
            PlacerOptions,
            SimulatedAnnealingPlacer,
            paper_architecture,
        )
        from repro.fpga.generators import minimum_architecture_size

        result = generate_packed_design("flow", num_luts=40, num_ffs=12,
                                        num_nets=140, cluster_size=4, seed=2)
        netlist = result.netlist
        arch = paper_architecture(minimum_architecture_size(netlist),
                                  channel_width=20)
        placed = SimulatedAnnealingPlacer(
            netlist, arch, PlacerOptions(seed=1, alpha_t=0.5,
                                         inner_num=0.25)).place()
        routing = PathFinderRouter(netlist, arch, placed.placement).route()
        assert routing.wirelength > 0
        assert set(routing.net_trees) == {n.id for n in netlist.nets}
