"""Tests for im2col/col2im packing and activation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    col2im,
    col2im_bt,
    conv2d_output_size,
    conv_transpose2d_output_size,
    im2col,
    im2col_view,
    leaky_relu,
    leaky_relu_,
    pad2d,
    relu_,
    sigmoid,
)


class TestOutputSizes:
    def test_conv_halves_with_k4_s2_p1(self):
        assert conv2d_output_size(256, 4, 2, 1) == 128
        assert conv2d_output_size(64, 4, 2, 1) == 32
        assert conv2d_output_size(2, 4, 2, 1) == 1

    def test_conv_transpose_doubles_with_k4_s2_p1(self):
        assert conv_transpose2d_output_size(128, 4, 2, 1) == 256
        assert conv_transpose2d_output_size(1, 4, 2, 1) == 2

    def test_conv_stride1_k4_p1_shrinks_by_one(self):
        # The discriminator's final layers: 32 -> 31 -> 30 in the paper.
        assert conv2d_output_size(32, 4, 1, 1) == 31
        assert conv2d_output_size(31, 4, 1, 1) == 30

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            conv2d_output_size(2, 4, 2, 0)
        with pytest.raises(ValueError):
            conv_transpose2d_output_size(1, 2, 4, 1)

    def test_roundtrip_inverse(self):
        for size in (2, 4, 8, 32, 128):
            down = conv2d_output_size(size, 4, 2, 1)
            assert conv_transpose2d_output_size(down, 4, 2, 1) == size


class TestIm2Col:
    def test_identity_kernel1(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float32).reshape(2, 3, 4, 4)
        col = im2col(x, kernel=1, stride=1, pad=0)
        assert col.shape == (2 * 16, 3)
        # Row 0 is the pixel at (0, 0) across channels.
        np.testing.assert_array_equal(col[0], x[0, :, 0, 0])

    def test_known_window_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        col = im2col(x, kernel=2, stride=2, pad=0)
        assert col.shape == (4, 4)
        np.testing.assert_array_equal(col[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(col[3], [10, 11, 14, 15])

    def test_padding_inserts_zeros(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        col = im2col(x, kernel=2, stride=2, pad=1)
        # Four windows, each has exactly one real pixel.
        assert col.shape == (4, 4)
        assert col.sum() == 4.0

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 3),
        size=st.sampled_from([4, 6, 8]),
        kernel=st.sampled_from([1, 2, 3, 4]),
        stride=st.sampled_from([1, 2]),
        pad=st.sampled_from([0, 1]),
    )
    def test_col2im_is_adjoint_of_im2col(self, n, c, size, kernel, stride, pad):
        """<im2col(x), y> == <x, col2im(y)> for all x, y — the exactness
        property that makes conv backward correct."""
        if (size + 2 * pad - kernel) < 0:
            return
        rng = np.random.default_rng(42)
        x = rng.normal(size=(n, c, size, size))
        col = im2col(x, kernel, stride, pad)
        y = rng.normal(size=col.shape)
        lhs = float((col * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel, stride, pad)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestIm2ColFastPaths:
    def test_im2col_view_is_zero_copy(self):
        x = np.arange(2 * 3 * 6 * 6, dtype=np.float32).reshape(2, 3, 6, 6)
        view = im2col_view(x, kernel=2, stride=2)
        assert view.base is x or np.shares_memory(view, x)
        assert view.shape == (2, 3, 3, 3, 2, 2)

    @pytest.mark.parametrize("kernel,stride,pad", [
        (4, 2, 1), (3, 1, 1), (2, 2, 0), (1, 1, 0), (4, 1, 2),
    ])
    def test_im2col_view_matches_im2col(self, kernel, stride, pad):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        padded = pad2d(x, pad)
        view = im2col_view(padded, kernel, stride)
        flat = np.ascontiguousarray(view).reshape(
            view.shape[0] * view.shape[1] * view.shape[2], -1)
        np.testing.assert_array_equal(flat,
                                      im2col(x, kernel, stride, pad))

    def test_im2col_out_buffer_round_trip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        expected = im2col(x, 3, 1, 1)
        out = np.empty_like(expected)
        pad_out = np.empty((1, 2, 8, 8), dtype=np.float32)
        got = im2col(x, 3, 1, 1, out=out, pad_out=pad_out)
        assert got is out
        np.testing.assert_array_equal(got, expected)
        # Reuse with a stale border skip must stay correct: the border was
        # zeroed on the first call and nothing else wrote it.
        again = im2col(x, 3, 1, 1, out=out, pad_out=pad_out,
                       zero_border=False)
        np.testing.assert_array_equal(again, expected)

    def test_pad2d_matches_np_pad(self):
        x = np.random.default_rng(2).normal(size=(2, 3, 5, 4)).astype(
            np.float32)
        np.testing.assert_array_equal(
            pad2d(x, 2), np.pad(x, ((0, 0), (0, 0), (2, 2), (2, 2))))
        assert pad2d(x, 0) is x

    def test_col2im_bt_matches_col2im(self):
        rng = np.random.default_rng(3)
        n, c, h, w, k, s, p = 2, 3, 8, 8, 4, 2, 1
        oh = conv2d_output_size(h, k, s, p)
        col = rng.normal(size=(n * oh * oh, c * k * k)).astype(np.float32)
        col_bt = np.ascontiguousarray(
            col.reshape(n, oh * oh, c * k * k).transpose(0, 2, 1))
        np.testing.assert_allclose(
            col2im_bt(col_bt, (n, c, h, w), k, s, p),
            col2im(col, (n, c, h, w), k, s, p), atol=1e-6)


class TestActivations:
    def test_sigmoid_extremes_are_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        y = sigmoid(x)
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0)
        assert np.all(np.isfinite(y))

    def test_sigmoid_symmetry(self):
        x = np.linspace(-8, 8, 33)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_leaky_relu_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(leaky_relu(x, 0.2), [-0.4, 0.0, 3.0])

    def test_sigmoid_computes_in_input_dtype(self):
        """No float64 allocation + round-trip for float32 inputs."""
        x32 = np.linspace(-50, 50, 101, dtype=np.float32)
        y32 = sigmoid(x32)
        assert y32.dtype == np.float32
        assert np.all(np.isfinite(y32))
        np.testing.assert_allclose(
            y32, sigmoid(x32.astype(np.float64)).astype(np.float32),
            atol=2e-7)
        assert sigmoid(np.float64(0.5).reshape(())).dtype == np.float64
        assert sigmoid(np.array([0, 1, 2])).dtype == np.float64  # int input

    def test_sigmoid_gradcheck(self):
        """Finite-difference check of the Sigmoid layer's derivative."""
        from repro.nn import Sigmoid
        from repro.nn.gradcheck import check_layer_input_grad

        rng = np.random.default_rng(0)
        x = rng.normal(scale=2.0, size=(2, 1, 4, 4))
        error = check_layer_input_grad(Sigmoid(), x)
        assert error < 1e-6

    def test_leaky_relu_matches_where_formulation_bitwise(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(512,)).astype(np.float32)
        x[:2] = [0.0, -0.0]
        for slope in (0.0, 0.2, 1.0):
            expected = np.where(x >= 0, x, np.float32(slope) * x)
            np.testing.assert_array_equal(leaky_relu(x, slope), expected)
        # Infinities too, for every positive slope (at slope == 0 the
        # max(x, 0*x) form yields NaN at +inf where np.where keeps inf —
        # finite activations, the only kind a trained net produces, are
        # bitwise identical).
        x[:2] = [np.inf, -np.inf]
        np.testing.assert_array_equal(
            leaky_relu(x, 0.2), np.where(x >= 0, x, np.float32(0.2) * x))

    def test_leaky_relu_out_rejects_aliasing(self):
        x = np.zeros(4, dtype=np.float32)
        with pytest.raises(ValueError, match="alias"):
            leaky_relu(x, 0.2, out=x)

    def test_leaky_relu_inplace_matches_out_of_place(self):
        """Satellite: the in-place variants are value-equal."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 5, 7)).astype(np.float32)
        expected = leaky_relu(x, 0.2)
        worked = x.copy()
        result = leaky_relu_(worked, 0.2)
        assert result is worked
        np.testing.assert_array_equal(result, expected)

    def test_relu_inplace_matches_out_of_place(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(64,)).astype(np.float32)
        expected = leaky_relu(x, 0.0)
        worked = x.copy()
        result = relu_(worked)
        assert result is worked
        np.testing.assert_array_equal(result, expected)


class TestBlockedMatmul:
    def test_matches_plain_matmul(self):
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 7)).astype(np.float32)
        b = rng.normal(size=(7, 5)).astype(np.float32)
        np.testing.assert_allclose(blocked_matmul(a, b, 4), a @ b,
                                   atol=1e-6)

    def test_blocks_are_stack_invariant(self):
        """Each block's rows are bitwise-identical however many are stacked."""
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(1)
        a = rng.normal(size=(64, 48)).astype(np.float32)
        b = rng.normal(size=(48, 3)).astype(np.float32)
        stacked = blocked_matmul(np.concatenate([a] * 5), b, 64)
        single = blocked_matmul(a, b, 64)
        for chunk in range(5):
            assert np.array_equal(stacked[chunk * 64:(chunk + 1) * 64],
                                  single)

    def test_normalizes_layout(self):
        """Transposed views and contiguous copies produce identical bits."""
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(2)
        a = rng.normal(size=(48, 64)).astype(np.float32)
        b = rng.normal(size=(48, 3)).astype(np.float32)
        view = a.T                       # non-contiguous
        copy = np.ascontiguousarray(view)
        assert np.array_equal(blocked_matmul(view, b, 64),
                              blocked_matmul(copy, b, 64))

    def test_rejects_ragged_blocks(self):
        from repro.nn import blocked_matmul

        with pytest.raises(ValueError, match="block_rows"):
            blocked_matmul(np.zeros((10, 4)), np.zeros((4, 2)), 4)

    def test_out_buffer_matches_allocating_path(self):
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(3)
        a = rng.normal(size=(64, 16)).astype(np.float32)
        b = rng.normal(size=(16, 5)).astype(np.float32)
        expected = blocked_matmul(a, b, 16)
        out = np.empty_like(expected)
        got = blocked_matmul(a, b, 16, out=out)
        assert got is out
        np.testing.assert_array_equal(got, expected)

    def test_contiguous_operands_skip_normalization(self):
        from repro.nn import blocked_matmul

        a = np.ones((8, 4), dtype=np.float32)
        b = np.ones((4, 2), dtype=np.float32)
        # Already C-contiguous: the result must be produced without the
        # (copying) normalization path ever changing values.
        np.testing.assert_array_equal(blocked_matmul(a, b, 4), a @ b)
