"""Tests for im2col/col2im packing and activation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    col2im,
    conv2d_output_size,
    conv_transpose2d_output_size,
    im2col,
    leaky_relu,
    sigmoid,
)


class TestOutputSizes:
    def test_conv_halves_with_k4_s2_p1(self):
        assert conv2d_output_size(256, 4, 2, 1) == 128
        assert conv2d_output_size(64, 4, 2, 1) == 32
        assert conv2d_output_size(2, 4, 2, 1) == 1

    def test_conv_transpose_doubles_with_k4_s2_p1(self):
        assert conv_transpose2d_output_size(128, 4, 2, 1) == 256
        assert conv_transpose2d_output_size(1, 4, 2, 1) == 2

    def test_conv_stride1_k4_p1_shrinks_by_one(self):
        # The discriminator's final layers: 32 -> 31 -> 30 in the paper.
        assert conv2d_output_size(32, 4, 1, 1) == 31
        assert conv2d_output_size(31, 4, 1, 1) == 30

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            conv2d_output_size(2, 4, 2, 0)
        with pytest.raises(ValueError):
            conv_transpose2d_output_size(1, 2, 4, 1)

    def test_roundtrip_inverse(self):
        for size in (2, 4, 8, 32, 128):
            down = conv2d_output_size(size, 4, 2, 1)
            assert conv_transpose2d_output_size(down, 4, 2, 1) == size


class TestIm2Col:
    def test_identity_kernel1(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float32).reshape(2, 3, 4, 4)
        col = im2col(x, kernel=1, stride=1, pad=0)
        assert col.shape == (2 * 16, 3)
        # Row 0 is the pixel at (0, 0) across channels.
        np.testing.assert_array_equal(col[0], x[0, :, 0, 0])

    def test_known_window_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        col = im2col(x, kernel=2, stride=2, pad=0)
        assert col.shape == (4, 4)
        np.testing.assert_array_equal(col[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(col[3], [10, 11, 14, 15])

    def test_padding_inserts_zeros(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        col = im2col(x, kernel=2, stride=2, pad=1)
        # Four windows, each has exactly one real pixel.
        assert col.shape == (4, 4)
        assert col.sum() == 4.0

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 3),
        size=st.sampled_from([4, 6, 8]),
        kernel=st.sampled_from([1, 2, 3, 4]),
        stride=st.sampled_from([1, 2]),
        pad=st.sampled_from([0, 1]),
    )
    def test_col2im_is_adjoint_of_im2col(self, n, c, size, kernel, stride, pad):
        """<im2col(x), y> == <x, col2im(y)> for all x, y — the exactness
        property that makes conv backward correct."""
        if (size + 2 * pad - kernel) < 0:
            return
        rng = np.random.default_rng(42)
        x = rng.normal(size=(n, c, size, size))
        col = im2col(x, kernel, stride, pad)
        y = rng.normal(size=col.shape)
        lhs = float((col * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel, stride, pad)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestActivations:
    def test_sigmoid_extremes_are_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        y = sigmoid(x)
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0)
        assert np.all(np.isfinite(y))

    def test_sigmoid_symmetry(self):
        x = np.linspace(-8, 8, 33)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_leaky_relu_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(leaky_relu(x, 0.2), [-0.4, 0.0, 3.0])


class TestBlockedMatmul:
    def test_matches_plain_matmul(self):
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 7)).astype(np.float32)
        b = rng.normal(size=(7, 5)).astype(np.float32)
        np.testing.assert_allclose(blocked_matmul(a, b, 4), a @ b,
                                   atol=1e-6)

    def test_blocks_are_stack_invariant(self):
        """Each block's rows are bitwise-identical however many are stacked."""
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(1)
        a = rng.normal(size=(64, 48)).astype(np.float32)
        b = rng.normal(size=(48, 3)).astype(np.float32)
        stacked = blocked_matmul(np.concatenate([a] * 5), b, 64)
        single = blocked_matmul(a, b, 64)
        for chunk in range(5):
            assert np.array_equal(stacked[chunk * 64:(chunk + 1) * 64],
                                  single)

    def test_normalizes_layout(self):
        """Transposed views and contiguous copies produce identical bits."""
        from repro.nn import blocked_matmul

        rng = np.random.default_rng(2)
        a = rng.normal(size=(48, 64)).astype(np.float32)
        b = rng.normal(size=(48, 3)).astype(np.float32)
        view = a.T                       # non-contiguous
        copy = np.ascontiguousarray(view)
        assert np.array_equal(blocked_matmul(view, b, 64),
                              blocked_matmul(copy, b, 64))

    def test_rejects_ragged_blocks(self):
        from repro.nn import blocked_matmul

        with pytest.raises(ValueError, match="block_rows"):
            blocked_matmul(np.zeros((10, 4)), np.zeros((4, 2)), 4)
