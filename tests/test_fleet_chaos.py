"""Fault tolerance: leases, reap, scrub, breakers, failover — proven.

The kill -9 tests here are the PR's acceptance bar: SIGKILL one of
three process workers mid-drain and mid-forecast-load, and assert the
spool drains with every job done (requeued, not lost) and routed
forecasts stay bitwise-equal to a serial single-engine run.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from tests.conftest import make_dataset, make_tiny_model
from repro.data.store import ShardedStore
from repro.fleet import (
    ArtifactStore,
    CircuitBreaker,
    Fault,
    FaultPlan,
    FleetRouter,
    JobStore,
    LeaseLostError,
    ProcessWorker,
    WorkerCrashError,
    WorkerPool,
    executor,
    run_chaos_drain,
)
from repro.fleet.chaos import ChaosError, corrupt_blob, flip_byte, garble_pipe
from repro.fleet.pool import EXECUTORS
from repro.fleet.router import backoff_seconds
from repro.serve.client import ClientError, ForecastClient

FAR_FUTURE = 1e12          # a monotonic instant past any real lease


@pytest.fixture()
def store(tmp_path):
    return JobStore(tmp_path / "jobs", lease_seconds=5.0, max_attempts=2)


@pytest.fixture()
def slow_executor():
    """A deliberately slow job kind, so kills land mid-drain."""
    @executor("slow-chaos")
    def run_slow(payload):
        time.sleep(payload.get("delay", 0.2))
        return {"value": payload["value"]}

    yield run_slow
    EXECUTORS.pop("slow-chaos", None)


def _forecast_fixture(tmp_path, count=6):
    """Checkpoint + dataset store shared by the recovery scenarios."""
    (tmp_path / "ckpt").mkdir(exist_ok=True)
    make_tiny_model().save(tmp_path / "ckpt" / "cong.npz")
    ShardedStore.from_dataset(tmp_path / "data",
                              make_dataset(count=count, size=16),
                              shard_size=3)
    return tmp_path / "ckpt", tmp_path / "data"


def _fill_forecast_spool(tmp_path, tag, count=6, **store_kwargs):
    root = tmp_path / f"spool-{tag}"
    store = JobStore(root, **store_kwargs)
    for index in range(count):
        store.submit("forecast", {
            "checkpoints": str(tmp_path / "ckpt"),
            "model": "cong",
            "input": {"store": str(tmp_path / "data"), "index": index},
            "artifacts": str(tmp_path / f"art-{tag}")})
    return root, store


class TestLeases:
    def test_claim_stamps_lease_and_attempts(self, store):
        store.submit("echo", {})
        before = time.monotonic()
        job = store.claim("w0")
        assert job.attempts == 1
        assert job.lease_deadline is not None
        assert job.lease_deadline >= before + store.lease_seconds - 1.0
        on_disk = store.get(job.job_id)
        assert on_disk.attempts == 1
        assert on_disk.lease_deadline == job.lease_deadline

    def test_heartbeat_refreshes_and_detects_loss(self, store):
        store.submit("echo", {})
        job = store.claim("w0")
        old_deadline = job.lease_deadline
        time.sleep(0.01)
        assert store.heartbeat(job) is True
        assert job.lease_deadline > old_deadline
        store.reap(now=FAR_FUTURE)           # lease gone
        assert store.heartbeat(job) is False

    def test_reap_requeues_expired_preserving_order(self, store):
        ids = [store.submit("echo", {"value": i}).job_id for i in range(3)]
        claimed = [store.claim(f"w{i}") for i in range(3)]
        actions = store.reap(now=FAR_FUTURE)
        assert [entry["action"] for entry in actions] == ["requeued"] * 3
        assert {entry["worker"] for entry in actions} == {"w0", "w1", "w2"}
        assert store.counts()["pending"] == 3
        # Requeue preserves submit order; the next claims re-walk it.
        reclaimed = [store.claim("w9").job_id for _ in range(3)]
        assert reclaimed == ids
        assert claimed[0].job_id == ids[0]

    def test_reclaim_increments_attempts(self, store):
        store.submit("echo", {})
        first = store.claim("w0")
        assert first.attempts == 1
        store.reap(now=FAR_FUTURE)
        second = store.claim("w1")
        assert second.attempts == 2

    def test_reap_fails_job_after_attempt_budget(self, store):
        # max_attempts=2: first expiry requeues, second fails for good.
        store.submit("echo", {})
        store.claim("w0")
        assert store.reap(now=FAR_FUTURE)[0]["action"] == "requeued"
        store.claim("w0")
        actions = store.reap(now=FAR_FUTURE)
        assert actions[0]["action"] == "failed"
        failed = store.jobs("failed")
        assert len(failed) == 1
        assert "attempt 2/2 budget spent" in failed[0].error
        assert "w0" in failed[0].error

    def test_unexpired_lease_not_reaped(self, store):
        store.submit("echo", {})
        store.claim("w0")
        assert store.reap() == []
        assert store.counts()["running"] == 1

    def test_complete_after_reap_raises_lease_lost(self, store):
        store.submit("echo", {})
        job = store.claim("w0")
        store.reap(now=FAR_FUTURE)
        with pytest.raises(LeaseLostError, match="result discarded"):
            store.complete(job, {"late": True})
        # The job survived in pending, unduplicated.
        assert store.counts() == {"pending": 1, "running": 0,
                                  "done": 0, "failed": 0}

    def test_fail_after_reap_raises_lease_lost(self, store):
        store.submit("echo", {})
        job = store.claim("w0")
        store.reap(now=FAR_FUTURE)
        with pytest.raises(LeaseLostError):
            store.fail(job, "late error")

    def test_lease_params_validated(self, tmp_path):
        with pytest.raises(ValueError, match="lease_seconds"):
            JobStore(tmp_path / "a", lease_seconds=0)
        with pytest.raises(ValueError, match="max_attempts"):
            JobStore(tmp_path / "b", max_attempts=0)


class TestFaultPlan:
    def test_round_trips_through_json(self, tmp_path):
        plan = FaultPlan.generate(7, workers=3, jobs=10, count=3,
                                  kinds=("kill_worker", "corrupt_blob",
                                         "stall_worker"))
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan
        # The file is plain JSON a CI job can also author by hand.
        document = json.loads(path.read_text())
        assert document["seed"] == 7
        assert len(document["faults"]) == 3

    def test_same_seed_same_plan(self):
        assert FaultPlan.generate(3) == FaultPlan.generate(3)
        assert FaultPlan.generate(3) != FaultPlan.generate(4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            Fault(kind="set-on-fire")

    def test_triggers_land_mid_drain(self):
        plan = FaultPlan.generate(0, workers=3, jobs=8, count=5)
        assert all(1 <= fault.at <= 6 for fault in plan.faults)


class TestScrub:
    def test_detects_and_quarantines_exactly_the_corrupt_blob(self,
                                                              tmp_path):
        store = ArtifactStore(tmp_path / "art")
        good = store.put_bytes(b"intact" * 100, "good.bin")
        bad = store.put_bytes(b"doomed" * 100, "bad.bin")
        bad_blob = bad.files[0]["sha256"]
        flip_byte(store.blob_path(bad_blob), offset=17)
        report = store.scrub()
        assert [e["digest"] for e in report["corrupt_blobs"]] == [bad_blob]
        assert len(report["quarantined"]) == 1
        assert not store.blob_path(bad_blob).exists()
        assert (store.quarantine_dir / bad_blob).exists()
        assert report["clean"] is False
        # The good artifact is untouched and still readable.
        assert store.read_bytes(good.digest) == b"intact" * 100
        # Quarantined blob shows up as missing for its artifact.
        assert [e["artifact"] for e in report["missing_blobs"]] \
            == ["bad.bin"]

    def test_store_self_heals_on_reput(self, tmp_path):
        store = ArtifactStore(tmp_path / "art")
        ref = store.put_bytes(b"payload" * 50, "x.bin")
        flip_byte(store.blob_path(ref.files[0]["sha256"]))
        assert store.scrub()["clean"] is False
        # Content-addressed: re-putting identical bytes refills the
        # vacated address and the store is whole again.
        again = store.put_bytes(b"payload" * 50, "x.bin")
        assert again.digest == ref.digest
        report = store.scrub()
        assert report["clean"] is True
        assert store.read_bytes(ref.digest) == b"payload" * 50

    def test_corrupt_manifest_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path / "art")
        ref = store.put_bytes(b"data", "m.bin")
        manifest = store.manifests_dir / f"{ref.digest}.json"
        manifest.write_text("{ not json")
        report = store.scrub()
        assert len(report["corrupt_manifests"]) == 1
        assert "unreadable" in report["corrupt_manifests"][0]["problem"]
        assert not manifest.exists()
        assert report["clean"] is False

    def test_clean_store_reports_clean(self, tmp_path):
        store = ArtifactStore(tmp_path / "art")
        store.put_bytes(b"fine", "ok.bin")
        report = store.scrub()
        assert report["clean"] is True
        assert report["blobs_scanned"] == 1
        assert report["quarantined"] == []

    def test_no_quarantine_mode_reports_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "art")
        ref = store.put_bytes(b"stays" * 20, "s.bin")
        blob = store.blob_path(ref.files[0]["sha256"])
        flip_byte(blob)
        report = store.scrub(quarantine=False)
        assert len(report["corrupt_blobs"]) == 1
        assert report["quarantined"] == []
        assert blob.exists()

    def test_stats_count_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path / "art")
        ref = store.put_bytes(b"q" * 64, "q.bin")
        flip_byte(store.blob_path(ref.files[0]["sha256"]))
        store.scrub()
        assert store.stats()["quarantined"] == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(threshold=2, window=10.0, cooldown=5.0)
        assert breaker.allow(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=0.1)           # one failure: still closed
        breaker.record_failure(now=0.2)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(now=1.0)
        assert breaker.allow(now=5.5)           # cooldown -> half-open
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, window=10.0, cooldown=1.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=1.5)           # half-open probe
        breaker.record_failure(now=1.6)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(now=1.7)

    def test_success_closes_and_clears(self):
        breaker = CircuitBreaker(threshold=1, window=10.0, cooldown=1.0)
        breaker.record_failure(now=0.0)
        breaker.allow(now=1.5)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.value == 0.0

    def test_old_failures_age_out_of_window(self):
        breaker = CircuitBreaker(threshold=2, window=1.0, cooldown=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=5.0)         # first aged out
        assert breaker.state == CircuitBreaker.CLOSED


class TestBackoff:
    def test_jittered_exponential_is_seeded_and_bounded(self):
        import random
        a = [backoff_seconds(i, 0.05, 1.0, random.Random(9))
             for i in range(8)]
        b = [backoff_seconds(i, 0.05, 1.0, random.Random(9))
             for i in range(8)]
        assert a == b                            # replayable
        for attempt, delay in enumerate(a):
            assert 0 < delay <= 1.0
            assert delay >= min(1.0, 0.05 * 2 ** attempt) * 0.5

    def test_client_backoff_prefers_server_hint(self):
        client = ForecastClient(retries=3, retry_seed=1)
        assert client._backoff(0, 0.75) == 0.75
        fallback = client._backoff(5, None)
        assert 0 < fallback <= client.retry_cap


class TestClientRetry:
    def _flaky(self, client, failures, status=503, retry_after=0.0):
        calls = {"n": 0}

        def fake(path, payload=None, accept=None):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise ClientError(status, "busy",
                                  retry_after=retry_after)
            return {"ok": True}

        client._request_once = fake
        return calls

    def test_retries_503_until_success(self):
        client = ForecastClient(retries=2, retry_base=0.001)
        calls = self._flaky(client, failures=2, retry_after=0.001)
        assert client._request("/x") == {"ok": True}
        assert calls["n"] == 3

    def test_budget_exhausted_raises_last_error(self):
        client = ForecastClient(retries=1, retry_base=0.001)
        self._flaky(client, failures=5, retry_after=0.001)
        with pytest.raises(ClientError) as failure:
            client._request("/x")
        assert failure.value.status == 503
        assert failure.value.retry_after == 0.001

    def test_client_errors_not_retried(self):
        client = ForecastClient(retries=5)
        calls = self._flaky(client, failures=5, status=404)
        with pytest.raises(ClientError):
            client._request("/x")
        assert calls["n"] == 1                   # no retry on 4xx

    def test_zero_retries_is_the_old_behavior(self):
        client = ForecastClient()
        calls = self._flaky(client, failures=1)
        with pytest.raises(ClientError):
            client._request("/x")
        assert calls["n"] == 1


class TestKill9Pool:
    def test_sigkill_mid_forecast_load_recovers_bitwise(self, tmp_path):
        """Acceptance: SIGKILL 1 of 3 workers while it is still coming
        up; the drain completes and output is byte-identical to serial."""
        _forecast_fixture(tmp_path, count=6)
        serial_root, serial_store = _fill_forecast_spool(tmp_path, "serial")
        counts = WorkerPool(serial_root, workers=1,
                            publish=False).run_until_drained(timeout=300)
        assert counts["done"] == 6
        reference = [job.result["artifact"]
                     for job in serial_store.jobs("done")]

        chaos_root, chaos_store = _fill_forecast_spool(tmp_path, "chaos")
        killed: dict = {}

        def kill_first_alive(poll_counts, processes):
            # First supervision tick: workers are spawning / warming
            # their model registries — kill slot 0 right there.
            if killed:
                return
            process = processes[0]
            if process.pid is not None and process.is_alive():
                os.kill(process.pid, signal.SIGKILL)
                killed["pid"] = process.pid

        counts = WorkerPool(chaos_root, workers=3, publish=False,
                            lease_seconds=1.0).run_until_drained(
            timeout=300, on_poll=kill_first_alive)
        assert killed, "the kill never applied to a live worker"
        assert counts["done"] == 6 and counts["failed"] == 0
        digests = [job.result["artifact"]
                   for job in chaos_store.jobs("done")]
        assert digests == reference
        serial_art = ArtifactStore(tmp_path / "art-serial")
        chaos_art = ArtifactStore(tmp_path / "art-chaos")
        for digest in reference:
            assert serial_art.read_bytes(digest) \
                == chaos_art.read_bytes(digest)
        assert chaos_art.verify() == []

    def test_sigkill_mid_drain_requeues_not_loses(self, tmp_path,
                                                  slow_executor):
        """SIGKILL a worker that owns a running job: the lease reaper
        recycles the orphan and every job still completes exactly once."""
        root = tmp_path / "spool"
        store = JobStore(root, lease_seconds=0.5)
        for i in range(6):
            store.submit("slow-chaos", {"value": i, "delay": 0.2})
        killed: dict = {}

        def kill_once_running(counts, processes):
            if killed or counts["running"] == 0:
                return
            process = processes[0]
            if process.pid is not None and process.is_alive():
                os.kill(process.pid, signal.SIGKILL)
                killed["pid"] = process.pid

        counts = WorkerPool(root, workers=3, publish=False,
                            lease_seconds=0.5).run_until_drained(
            timeout=120, on_poll=kill_once_running)
        assert killed
        assert counts["done"] == 6 and counts["failed"] == 0
        # Exactly one completion per job, values intact.
        values = sorted(job.result["value"] for job in store.jobs("done"))
        assert values == list(range(6))

    def test_poison_job_fails_after_budget_without_stalling_drain(
            self, tmp_path, slow_executor):
        """A job whose worker always dies must land in failed/, not
        ping-pong forever or wedge the drain."""
        root = tmp_path / "spool"
        store = JobStore(root, lease_seconds=0.3, max_attempts=2)
        store.submit("slow-chaos", {"value": 0, "delay": 30.0})  # poison
        store.submit("slow-chaos", {"value": 1, "delay": 0.05})

        def kill_poison_owner(counts, processes):
            # Whoever is running the 30s job gets killed, every tick.
            for job in store.jobs("running"):
                if job.payload["delay"] > 1.0 and job.worker:
                    slot = int(job.worker[1])   # "w0" / "w0r1" -> 0
                    process = processes.get(slot)
                    if process is not None and process.pid is not None \
                            and process.is_alive():
                        os.kill(process.pid, signal.SIGKILL)

        counts = WorkerPool(root, workers=2, publish=False,
                            lease_seconds=0.3, max_attempts=2,
                            max_restarts=6).run_until_drained(
            timeout=120, on_poll=kill_poison_owner)
        assert counts["done"] == 1
        assert counts["failed"] == 1
        failed = store.jobs("failed")
        assert "budget spent" in failed[0].error


class TestRouterFailover:
    def _checkpoints(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        model = make_tiny_model()
        model.save(ckpt / "tiny.npz")
        return ckpt, model

    def test_crash_fails_pending_futures_fast_and_typed(self, tmp_path):
        ckpt, _ = self._checkpoints(tmp_path)
        worker = ProcessWorker("w0", ckpt)
        worker.start()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 16, 16)).astype(np.float32)
        # Freeze the child so the requests are provably in flight, then
        # kill it: EOF on the pipe must fail every pending future with
        # the typed crash error, not hang them.
        os.kill(worker.pid, signal.SIGSTOP)
        futures = [worker.submit("tiny", x, 30.0) for _ in range(3)]
        os.kill(worker.pid, signal.SIGKILL)
        started = time.monotonic()
        for future in futures:
            with pytest.raises(WorkerCrashError):
                future.result(timeout=10.0)
        assert time.monotonic() - started < 5.0
        assert not worker.alive
        worker.stop()

    def test_restart_rewarns_models_and_serves(self, tmp_path):
        ckpt, model = self._checkpoints(tmp_path)
        worker = ProcessWorker("w0", ckpt)
        worker.start()
        first_pid = worker.pid
        os.kill(worker.pid, signal.SIGKILL)
        worker.restart()
        assert worker.pid != first_pid
        assert worker.restarts == 1
        assert worker.model_ids == ["tiny"]
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 16, 16)).astype(np.float32)
        image = worker.submit("tiny", x, 30.0).result(30.0)
        assert np.array_equal(image, model.forecast(x))
        worker.stop()

    def test_router_retries_crashed_requests_bitwise_equal(self, tmp_path):
        """Kill one of three workers with requests in flight; the router
        fails over to survivors and results match the serial model."""
        ckpt, model = self._checkpoints(tmp_path)
        rng = np.random.default_rng(2)
        inputs = [rng.normal(size=(4, 16, 16)).astype(np.float32)
                  for _ in range(9)]
        reference = [model.forecast(x) for x in inputs]
        router = FleetRouter.local(
            ckpt, workers=3, mode="process",
            supervise_interval=0.2, retry_budget=3, retry_base=0.05)
        with router:
            victim = router.workers[0]
            os.kill(victim.pid, signal.SIGSTOP)   # requests pile up on w0
            futures = [router.submit("tiny", x, timeout=60.0)
                       for x in inputs]
            os.kill(victim.pid, signal.SIGKILL)   # ...then crash it
            images = [future.result(60.0).image for future in futures]
            stats = router.stats()
            # The supervisor notices the dead worker and restarts it.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline \
                    and router.stats()["restarts"].get("w0", 0) < 1:
                time.sleep(0.1)
            assert router.stats()["restarts"].get("w0", 0) >= 1
        for image, expected in zip(images, reference):
            assert np.array_equal(image, expected)
        assert stats["retries"] >= 1
        assert stats["errors"] == 0              # crashes retried, not failed

    def test_garbled_pipe_message_recovers_via_restart(self, tmp_path):
        ckpt, model = self._checkpoints(tmp_path)
        router = FleetRouter.local(ckpt, workers=1, mode="process",
                                   supervise_interval=0.2)
        with router:
            worker = router.workers[0]
            assert garble_pipe(worker)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and worker.restarts < 1:
                time.sleep(0.1)
            assert worker.restarts >= 1
            rng = np.random.default_rng(3)
            x = rng.normal(size=(4, 16, 16)).astype(np.float32)
            result = router.forecast_result("tiny", x, timeout=30.0)
            assert np.array_equal(result.image, model.forecast(x))
            status = router.fleet_status()
        assert status["workers"][0]["restarts"] >= 1

    def test_stats_surface_new_counters(self, tmp_path):
        ckpt, _ = self._checkpoints(tmp_path)
        router = FleetRouter.local(ckpt, workers=1, mode="process",
                                   supervise=False)
        with router:
            stats = router.stats()
            status = router.fleet_status()
        assert stats["expired"] == 0
        assert stats["retries"] == 0
        assert stats["breakers"] == {"w0": "closed"}
        assert status["workers"][0]["breaker"] == "closed"


class TestChaosScenario:
    def test_seeded_plan_drain_scrub_and_self_heal(self, tmp_path):
        """The CI chaos-smoke scenario in miniature: worker kill + blob
        corruption under a seeded plan; drain completes, scrub
        quarantines exactly the corrupted blob, a re-route heals it."""
        _forecast_fixture(tmp_path, count=6)
        serial_root, serial_store = _fill_forecast_spool(tmp_path, "serial")
        WorkerPool(serial_root, workers=1,
                   publish=False).run_until_drained(timeout=300)
        reference = [job.result["artifact"]
                     for job in serial_store.jobs("done")]

        chaos_root, chaos_store = _fill_forecast_spool(tmp_path, "chaos")
        plan = FaultPlan(seed=42, faults=(
            Fault(kind="kill_worker", at=1, target=0),
            Fault(kind="corrupt_blob", at=2, target=0),
        ))
        report = run_chaos_drain(chaos_root, plan, workers=3,
                                 artifacts=tmp_path / "art-chaos",
                                 timeout=300, lease_seconds=1.0)
        counts = report["counts"]
        assert counts["done"] == 6 and counts["failed"] == 0
        digests = [job.result["artifact"]
                   for job in chaos_store.jobs("done")]
        assert digests == reference              # zero lost or duplicated
        corrupted = [event for event in report["events"]
                     if event["kind"] == "corrupt_blob"
                     and event.get("applied")]
        assert len(corrupted) == 1
        scrub = report["scrub"]
        assert scrub["clean"] is False
        assert [e["digest"] for e in scrub["corrupt_blobs"]] \
            == [corrupted[0]["digest"]]          # exactly the corrupted one
        assert len(scrub["quarantined"]) == 1

        # Self-heal: re-draining the same inputs re-puts the quarantined
        # content, after which the store scrubs clean and byte-matches
        # the serial store.
        heal_root, _ = _fill_forecast_spool(tmp_path, "chaos-heal")
        # Point the heal spool at the damaged store.
        heal_store = JobStore(heal_root)
        for job in heal_store.jobs("pending"):
            job.payload["artifacts"] = str(tmp_path / "art-chaos")
            heal_store._write("pending", job)
        WorkerPool(heal_root, workers=1,
                   publish=False).run_until_drained(timeout=300)
        chaos_art = ArtifactStore(tmp_path / "art-chaos")
        assert chaos_art.scrub()["clean"] is True
        serial_art = ArtifactStore(tmp_path / "art-serial")
        for digest in reference:
            assert chaos_art.read_bytes(digest) \
                == serial_art.read_bytes(digest)

    def test_corrupt_blob_primitive_waits_for_blobs(self, tmp_path):
        assert corrupt_blob(tmp_path / "empty") is None
