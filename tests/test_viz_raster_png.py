"""Canvas, line drawing, and PNG/PPM codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import Canvas, draw_line_accumulate, read_png, write_png, write_ppm


class TestCanvas:
    def test_background_fill(self):
        canvas = Canvas(4, 3, background=np.array([0.5, 0.25, 0.0]))
        np.testing.assert_allclose(canvas.pixels[..., 0], 0.5)
        assert canvas.pixels.shape == (3, 4, 3)

    def test_fill_rect_half_open(self):
        canvas = Canvas(4, 4)
        canvas.fill_rect(1, 1, 3, 3, np.zeros(3))
        assert canvas.pixels[1, 1, 0] == 0.0
        assert canvas.pixels[2, 2, 0] == 0.0
        assert canvas.pixels[3, 3, 0] == 1.0  # exclusive end
        assert canvas.pixels[0, 0, 0] == 1.0

    def test_fill_rect_clips(self):
        canvas = Canvas(4, 4)
        canvas.fill_rect(-5, -5, 100, 2, np.zeros(3))
        assert canvas.pixels[1, 3, 0] == 0.0
        assert canvas.pixels[2, 0, 0] == 1.0

    def test_degenerate_rect_noop(self):
        canvas = Canvas(4, 4)
        canvas.fill_rect(2, 2, 2, 3, np.zeros(3))
        np.testing.assert_allclose(canvas.pixels, 1.0)

    def test_to_uint8_rounding(self):
        canvas = Canvas(1, 1, background=np.array([0.5, 0.0, 1.0]))
        np.testing.assert_array_equal(canvas.to_uint8()[0, 0], [128, 0, 255])

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            Canvas(0, 5)


class TestLineDrawing:
    def test_horizontal_line(self):
        buf = np.zeros((5, 5), dtype=np.float32)
        draw_line_accumulate(buf, 0, 2, 4, 2)
        np.testing.assert_allclose(buf[2], 1.0)
        assert buf.sum() == pytest.approx(5.0)

    def test_diagonal_line_visits_each_column(self):
        buf = np.zeros((5, 5), dtype=np.float32)
        draw_line_accumulate(buf, 0, 0, 4, 4)
        np.testing.assert_allclose(np.diag(buf), 1.0)

    def test_accumulation_adds(self):
        buf = np.zeros((3, 3), dtype=np.float32)
        draw_line_accumulate(buf, 0, 1, 2, 1, intensity=0.5)
        draw_line_accumulate(buf, 0, 1, 2, 1, intensity=0.5)
        np.testing.assert_allclose(buf[1], 1.0)

    def test_out_of_bounds_clipped(self):
        buf = np.zeros((3, 3), dtype=np.float32)
        draw_line_accumulate(buf, -2, 1, 5, 1)
        assert buf.sum() == pytest.approx(3.0)

    @settings(max_examples=30, deadline=None)
    @given(x0=st.integers(0, 7), y0=st.integers(0, 7),
           x1=st.integers(0, 7), y1=st.integers(0, 7))
    def test_endpoints_always_drawn(self, x0, y0, x1, y1):
        buf = np.zeros((8, 8), dtype=np.float32)
        draw_line_accumulate(buf, x0, y0, x1, y1)
        assert buf[y0, x0] >= 1.0
        assert buf[y1, x1] >= 1.0


class TestPngCodec:
    def test_rgb_roundtrip_exact(self, tmp_path):
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, size=(9, 7, 3), dtype=np.uint8)
        path = write_png(tmp_path / "x.png", image)
        np.testing.assert_array_equal(read_png(path), image)

    def test_grayscale_roundtrip_exact(self, tmp_path):
        rng = np.random.default_rng(4)
        image = rng.integers(0, 256, size=(5, 11), dtype=np.uint8)
        path = write_png(tmp_path / "g.png", image)
        np.testing.assert_array_equal(read_png(path), image)

    def test_float_images_quantized(self, tmp_path):
        image = np.linspace(0, 1, 12, dtype=np.float32).reshape(2, 2, 3)
        path = write_png(tmp_path / "f.png", image)
        back = read_png(path).astype(np.float32) / 255.0
        assert np.abs(back - image).max() <= 0.5 / 255.0 + 1e-6

    def test_signature_check(self, tmp_path):
        bad = tmp_path / "bad.png"
        bad.write_bytes(b"not a png at all")
        with pytest.raises(ValueError, match="not a PNG"):
            read_png(bad)

    def test_rejects_weird_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(tmp_path / "bad.png", np.zeros((4, 4, 2)))

    @settings(max_examples=10, deadline=None)
    @given(h=st.integers(1, 16), w=st.integers(1, 16),
           seed=st.integers(0, 100))
    def test_roundtrip_property(self, h, w, seed):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(seed)
        image = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        with tempfile.TemporaryDirectory() as tmp:
            path = write_png(Path(tmp) / "p.png", image)
            np.testing.assert_array_equal(read_png(path), image)

    def test_ppm_header_and_size(self, tmp_path):
        image = np.zeros((2, 3, 3), dtype=np.uint8)
        path = write_ppm(tmp_path / "x.ppm", image)
        blob = path.read_bytes()
        assert blob.startswith(b"P6\n3 2\n255\n")
        assert len(blob) == len(b"P6\n3 2\n255\n") + 2 * 3 * 3
