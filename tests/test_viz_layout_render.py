"""Layout geometry and renderer tests (Figure 2 semantics)."""

import numpy as np
import pytest

from repro.fpga import (
    BlockType,
    DesignSpec,
    PathFinderRouter,
    Placement,
    generate_design,
    paper_architecture,
)
from repro.fpga.generators import minimum_architecture_size
from repro.viz import (
    COLOR_SCHEME,
    FloorplanLayout,
    difference_image,
    minimum_image_size,
    render_connectivity,
    render_floorplan,
    render_placement,
    render_routing,
)


@pytest.fixture(scope="module")
def design():
    spec = DesignSpec("viz", 60, 20, 200)
    return generate_design(spec, cluster_size=4, seed=2)


@pytest.fixture(scope="module")
def arch(design):
    return paper_architecture(minimum_architecture_size(design),
                              channel_width=12)


@pytest.fixture(scope="module")
def layout(arch):
    return FloorplanLayout(arch, minimum_image_size(arch))


@pytest.fixture(scope="module")
def placement(design, arch):
    return Placement.random(design, arch, np.random.default_rng(0))


@pytest.fixture(scope="module")
def routing(design, arch, placement):
    return PathFinderRouter(design, arch, placement).route()


class TestLayout:
    def test_minimum_size_is_power_of_two(self, arch):
        size = minimum_image_size(arch)
        assert size & (size - 1) == 0

    def test_rejects_too_small_image(self, arch):
        with pytest.raises(ValueError, match="below minimum"):
            FloorplanLayout(arch, minimum_image_size(arch) // 2)

    def test_elements_at_least_2x2(self, arch, layout):
        for x in range(1, arch.width + 1):
            for y in range(1, arch.height + 1):
                x0, y0, x1, y1 = layout.tile_rect(x, y)
                assert x1 - x0 >= 2 and y1 - y0 >= 2, (x, y)

    def test_channels_at_least_1px(self, arch, layout):
        for x in range(1, arch.width + 1):
            for y in range(0, arch.height + 1):
                x0, y0, x1, y1 = layout.hchan_rect(x, y)
                assert x1 - x0 >= 1 and y1 - y0 >= 1

    def test_rects_are_disjoint(self, arch, layout):
        """Tiles, channels and pads never overlap in pixel space."""
        cover = np.zeros((layout.image_size, layout.image_size), dtype=int)

        def paint(rect):
            x0, y0, x1, y1 = rect
            cover[y0:y1, x0:x1] += 1

        for x in range(1, arch.width + 1):
            for y in range(1, arch.height + 1):
                paint(layout.tile_rect(x, y))
        for x in range(1, arch.width + 1):
            for y in range(0, arch.height + 1):
                paint(layout.hchan_rect(x, y))
        for x in range(0, arch.width + 1):
            for y in range(1, arch.height + 1):
                paint(layout.vchan_rect(x, y))
        for x in range(1, arch.width + 1):
            for y in (0, arch.height + 1):
                paint(layout.io_rect(x, y))
        for y in range(1, arch.height + 1):
            for x in (0, arch.width + 1):
                paint(layout.io_rect(x, y))
        assert cover.max() == 1

    def test_y_axis_flipped(self, arch, layout):
        """Grid y grows upward; image rows grow downward."""
        _, top_row, _, _ = layout.tile_rect(1, arch.height)
        _, bottom_row, _, _ = layout.tile_rect(1, 1)
        assert top_row < bottom_row

    def test_macro_block_spans_rows(self, arch, layout):
        site = arch.mem_sites[0]
        x0, y0, x1, y1 = layout.block_rect(site, BlockType.MEM)
        tx0, ty0, tx1, ty1 = layout.tile_rect(site.x, site.y)
        assert (x0, x1) == (tx0, tx1)
        assert y1 - y0 > ty1 - ty0  # taller than a single tile

    def test_block_center_inside_rect(self, arch, layout):
        site = arch.clb_sites[0]
        cx, cy = layout.block_center(site, BlockType.CLB)
        x0, y0, x1, y1 = layout.block_rect(site, BlockType.CLB)
        assert x0 <= cx < x1 and y0 <= cy < y1

    def test_channel_mask_fraction_sane(self, layout):
        mask = layout.channel_pixel_mask()
        fraction = mask.mean()
        assert 0.05 < fraction < 0.6

    def test_io_rect_rejects_interior(self, arch, layout):
        with pytest.raises(ValueError):
            layout.io_rect(2, 2)


class TestRenderers:
    def test_floorplan_uses_scheme_colors(self, arch, layout):
        image = render_floorplan(arch, layout)
        site = arch.clb_sites[0]
        x0, y0, x1, y1 = layout.block_rect(site, BlockType.CLB)
        np.testing.assert_allclose(image[y0, x0], COLOR_SCHEME.lightblue)
        mem = arch.mem_sites[0]
        x0, y0, x1, y1 = layout.block_rect(mem, BlockType.MEM)
        np.testing.assert_allclose(image[y0, x0], COLOR_SCHEME.lightyellow)

    def test_floorplan_channels_white(self, arch, layout):
        image = render_floorplan(arch, layout)
        x0, y0, _, _ = layout.hchan_rect(1, 1)
        np.testing.assert_allclose(image[y0, x0], COLOR_SCHEME.white)

    def test_placement_blackens_used_clbs(self, design, arch, layout,
                                          placement):
        image = render_placement(placement, layout)
        clb = design.blocks_of_type(BlockType.CLB)[0]
        site = placement.site_of[clb.id]
        x0, y0, _, _ = layout.block_rect(site, BlockType.CLB)
        np.testing.assert_allclose(image[y0, x0], COLOR_SCHEME.black)

    def test_placement_keeps_unused_clbs_lightblue(self, design, arch, layout,
                                                   placement):
        used = {placement.site_of[b.id] for b in design.blocks}
        free = next(s for s in arch.clb_sites if s not in used)
        image = render_placement(placement, layout)
        x0, y0, _, _ = layout.block_rect(free, BlockType.CLB)
        np.testing.assert_allclose(image[y0, x0], COLOR_SCHEME.lightblue)

    def test_placement_differs_from_floorplan_only_on_blocks(
            self, arch, layout, placement):
        floor = render_floorplan(arch, layout)
        placed = render_placement(placement, layout, base=floor)
        changed = np.any(placed != floor, axis=-1)
        channel_mask = layout.channel_pixel_mask()
        assert not (changed & channel_mask).any()

    def test_routing_paints_all_channels(self, design, arch, layout, placement,
                                         routing):
        image = render_routing(placement, routing, layout)
        mask = layout.channel_pixel_mask()
        from repro.viz.colors import gradient_distance

        distances = gradient_distance(image[mask])
        assert distances.max() < 1e-4  # every channel pixel on the gradient

    def test_routing_preserves_structure_outside_channels(
            self, design, arch, layout, placement, routing):
        placed = render_placement(placement, layout)
        routed = render_routing(placement, routing, layout,
                                place_image=placed)
        mask = layout.channel_pixel_mask()
        np.testing.assert_allclose(routed[~mask], placed[~mask])

    def test_routing_utilization_recoverable(self, design, arch, layout,
                                             placement, routing):
        """Decode the painted heat map and compare with actual utilization."""
        from repro.viz.colors import decode_utilization

        image = render_routing(placement, routing, layout)
        h_util = routing.h_utilization()
        x0, y0, x1, y1 = layout.hchan_rect(2, 1)
        decoded = float(decode_utilization(image[y0, x0]))
        expected = float(np.clip(h_util[1, 1], 0, 1))
        assert decoded == pytest.approx(expected, abs=0.01)

    def test_difference_image_zero_iff_identical(self, arch, layout):
        floor = render_floorplan(arch, layout)
        assert difference_image(floor, floor).max() == 0.0
        other = floor.copy()
        other[0, 0, 0] += 0.5
        assert difference_image(floor, other).max() == pytest.approx(0.5)

    def test_difference_shape_mismatch_raises(self, arch, layout):
        floor = render_floorplan(arch, layout)
        with pytest.raises(ValueError):
            difference_image(floor, floor[:-1])


class TestConnectivity:
    def test_range_and_shape(self, design, arch, layout, placement):
        image = render_connectivity(design, placement, layout)
        assert image.shape == (layout.image_size, layout.image_size)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_nonempty_for_nonempty_netlist(self, design, arch, layout,
                                           placement):
        image = render_connectivity(design, placement, layout)
        assert image.max() == 1.0  # normalized peak

    def test_depends_on_placement(self, design, arch, layout):
        a = render_connectivity(
            design, Placement.random(design, arch, np.random.default_rng(1)),
            layout)
        b = render_connectivity(
            design, Placement.random(design, arch, np.random.default_rng(2)),
            layout)
        assert not np.allclose(a, b)

    def test_log_compress_toggle(self, design, arch, layout, placement):
        raw = render_connectivity(design, placement, layout,
                                  log_compress=False)
        compressed = render_connectivity(design, placement, layout,
                                         log_compress=True)
        # Log compression lifts mid-range values relative to the peak.
        assert compressed[raw > 0].mean() >= raw[raw > 0].mean()
