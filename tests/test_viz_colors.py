"""Color scheme, gradient, and grayscale conversion tests (Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import (
    COLOR_SCHEME,
    decode_utilization,
    rgb_to_grayscale,
    utilization_to_rgb,
)
from repro.viz.colors import gradient_distance


class TestScheme:
    def test_table1_colors_are_distinct(self):
        """Table 1 requires elements be differentiable by RGB distance."""
        scheme = COLOR_SCHEME
        named = [scheme.white, scheme.lightblue, scheme.pink,
                 scheme.lightyellow, scheme.black, scheme.io_pad]
        for i, a in enumerate(named):
            for b in named[i + 1:]:
                assert np.linalg.norm(a - b) > 0.1

    def test_gradient_endpoints(self):
        np.testing.assert_allclose(utilization_to_rgb(0.0),
                                   COLOR_SCHEME.gradient_low)
        np.testing.assert_allclose(utilization_to_rgb(1.0),
                                   COLOR_SCHEME.gradient_high)

    def test_gradient_clips_overuse(self):
        # Overused channels (utilization > 1) saturate at purple.
        np.testing.assert_allclose(utilization_to_rgb(1.7),
                                   COLOR_SCHEME.gradient_high)
        np.testing.assert_allclose(utilization_to_rgb(-0.2),
                                   COLOR_SCHEME.gradient_low)

    def test_gradient_is_linear_midpoint(self):
        mid = utilization_to_rgb(0.5)
        expected = (COLOR_SCHEME.gradient_low + COLOR_SCHEME.gradient_high) / 2
        np.testing.assert_allclose(mid, expected, atol=1e-6)


class TestDecode:
    @settings(max_examples=50, deadline=None)
    @given(u=st.floats(0.0, 1.0))
    def test_roundtrip_on_gradient(self, u):
        rgb = utilization_to_rgb(u)
        decoded = float(decode_utilization(rgb))
        assert decoded == pytest.approx(u, abs=1e-5)

    def test_vectorized_roundtrip(self):
        u = np.linspace(0, 1, 64).reshape(8, 8)
        rgb = utilization_to_rgb(u)
        assert rgb.shape == (8, 8, 3)
        np.testing.assert_allclose(decode_utilization(rgb), u, atol=1e-5)

    def test_off_gradient_color_projects(self):
        # A color near the middle of the gradient decodes to ~0.5.
        noisy = utilization_to_rgb(0.5) + np.array([0.02, -0.02, 0.01],
                                                   dtype=np.float32)
        assert float(decode_utilization(noisy)) == pytest.approx(0.5, abs=0.1)

    def test_gradient_distance_zero_on_gradient(self):
        rgb = utilization_to_rgb(np.linspace(0, 1, 16))
        np.testing.assert_allclose(gradient_distance(rgb), 0.0, atol=1e-5)

    def test_gradient_distance_positive_off_gradient(self):
        assert float(gradient_distance(COLOR_SCHEME.lightblue)) > 0.1


class TestGrayscale:
    def test_weights_match_itu601(self):
        red = np.zeros((1, 1, 3), dtype=np.float32)
        red[..., 0] = 1.0
        assert rgb_to_grayscale(red)[0, 0, 0] == pytest.approx(0.2989)

    def test_preserves_three_channels(self):
        rgb = np.random.default_rng(0).random((4, 4, 3)).astype(np.float32)
        gray = rgb_to_grayscale(rgb)
        assert gray.shape == (4, 4, 3)
        np.testing.assert_allclose(gray[..., 0], gray[..., 1])
        np.testing.assert_allclose(gray[..., 1], gray[..., 2])

    def test_gray_input_is_fixed_point(self):
        gray_value = np.full((2, 2, 3), 0.42, dtype=np.float32)
        np.testing.assert_allclose(rgb_to_grayscale(gray_value), gray_value,
                                   atol=1e-3)

    def test_collapses_gradient_contrast(self):
        """Why the paper's grayscale ablation loses accuracy: distinct
        utilizations map to much closer grayscale values."""
        lo = utilization_to_rgb(0.2)
        hi = utilization_to_rgb(0.8)
        rgb_distance = float(np.linalg.norm(lo - hi))
        gray_distance = float(np.linalg.norm(
            rgb_to_grayscale(lo.reshape(1, 1, 3))
            - rgb_to_grayscale(hi.reshape(1, 1, 3))))
        assert gray_distance < rgb_distance
