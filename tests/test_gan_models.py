"""U-Net generator and patch discriminator tests (Figure 5)."""

import numpy as np
import pytest

from repro.gan import PatchDiscriminator, UNetGenerator
from repro.gan.unet import encoder_filters


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestEncoderFilters:
    def test_paper_progression_at_256(self):
        # Figure 5: 64, 128, 256, 512, 512, 512, 512, 512 at 256x256.
        assert encoder_filters(256, 64) == [64, 128, 256, 512, 512, 512,
                                            512, 512]

    def test_small_image_fewer_levels(self):
        assert encoder_filters(32, 8) == [8, 16, 32, 64, 64]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            encoder_filters(100, 8)
        with pytest.raises(ValueError):
            encoder_filters(4, 8)


class TestUNetGenerator:
    @pytest.mark.parametrize("skip_mode", ["all", "single", "none"])
    def test_output_shape_and_range(self, rng, skip_mode):
        gen = UNetGenerator(in_channels=4, out_channels=3, image_size=32,
                            base_filters=4, skip_mode=skip_mode, rng=rng)
        x = rng.normal(size=(1, 4, 32, 32)).astype(np.float32)
        out = gen.forward(x)
        assert out.shape == (1, 3, 32, 32)
        assert out.min() >= -1.0 and out.max() <= 1.0  # tanh output

    def test_encoder_resolutions_halve_to_1x1(self, rng):
        gen = UNetGenerator(image_size=32, base_filters=4, rng=rng)
        x = rng.normal(size=(1, 4, 32, 32)).astype(np.float32)
        gen.forward(x)
        sizes = [act.shape[2] for act in gen._enc_acts]
        assert sizes == [16, 8, 4, 2, 1]

    def test_backward_shapes(self, rng):
        gen = UNetGenerator(image_size=32, base_filters=4, rng=rng)
        x = rng.normal(size=(1, 4, 32, 32)).astype(np.float32)
        out = gen.forward(x)
        grad = gen.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_invalid_skip_mode_raises(self, rng):
        with pytest.raises(ValueError, match="skip_mode"):
            UNetGenerator(skip_mode="some", rng=rng)

    def test_wrong_input_size_raises(self, rng):
        gen = UNetGenerator(image_size=32, base_filters=4, rng=rng)
        with pytest.raises(ValueError):
            gen.forward(np.zeros((1, 4, 64, 64), dtype=np.float32))
        with pytest.raises(ValueError):
            gen.forward(np.zeros((1, 3, 32, 32), dtype=np.float32))

    def test_skip_mode_changes_parameter_count(self, rng):
        """Skips concatenate channels, so decoders grow with skip count."""
        params = {
            mode: UNetGenerator(image_size=32, base_filters=4, skip_mode=mode,
                                rng=np.random.default_rng(0)).num_parameters()
            for mode in ("all", "single", "none")
        }
        assert params["all"] > params["single"] > params["none"]

    def test_skip_connections_carry_structure(self, rng):
        """With all skips, perturbing one input pixel changes the matching
        output region much more than with no skips — the structural bypass
        the paper's Section 5.3 ablation studies."""
        def sensitivity(skip_mode):
            gen = UNetGenerator(image_size=32, base_filters=4,
                                skip_mode=skip_mode, dropout=0.0,
                                rng=np.random.default_rng(1))
            gen.eval()
            x = np.zeros((1, 4, 32, 32), dtype=np.float32)
            base = gen.forward(x).copy()
            x2 = x.copy()
            x2[0, :, 8, 8] = 2.0
            shifted = gen.forward(x2)
            delta = np.abs(shifted - base)[0].sum(axis=0)
            local = delta[6:11, 6:11].sum()
            return local / (delta.sum() + 1e-9)

        assert sensitivity("all") > sensitivity("none")

    def test_gradient_check_end_to_end(self, rng):
        """Finite-difference check through the whole (tiny) U-Net."""
        from repro.nn.gradcheck import check_layer_input_grad

        gen = UNetGenerator(in_channels=2, out_channels=1, image_size=8,
                            base_filters=2, dropout=0.0, rng=rng)
        for _, param in gen.named_parameters():
            param.data = param.data.astype(np.float64)
            param.grad = param.grad.astype(np.float64)
        x = rng.normal(size=(1, 2, 8, 8))
        assert check_layer_input_grad(gen, x) < 5e-3

    def test_dropout_gives_stochastic_outputs(self, rng):
        gen = UNetGenerator(image_size=32, base_filters=4, dropout=0.5,
                            rng=rng)
        x = rng.normal(size=(1, 4, 32, 32)).astype(np.float32)
        a = gen.forward(x).copy()
        b = gen.forward(x)
        assert not np.allclose(a, b)  # z sampled via dropout

    def test_state_dict_roundtrip(self, rng):
        gen = UNetGenerator(image_size=16, base_filters=4, rng=rng)
        clone = UNetGenerator(image_size=16, base_filters=4,
                              rng=np.random.default_rng(42))
        clone.load_state_dict(gen.state_dict())
        gen.eval()
        clone.eval()
        x = rng.normal(size=(1, 4, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(gen.forward(x), clone.forward(x),
                                   rtol=1e-5)


class TestPatchDiscriminator:
    def test_paper_patch_sizes(self, rng):
        """Figure 5: at 256 input the patch pipeline is 128, 64, 32, 31, 30."""
        disc = PatchDiscriminator(in_channels=6, base_filters=4, rng=rng)
        x = rng.normal(size=(1, 6, 256, 256)).astype(np.float32)
        out = disc.forward(x)
        assert out.shape == (1, 1, 30, 30)

    def test_patch_output_at_64(self, rng):
        disc = PatchDiscriminator(in_channels=7, base_filters=4, rng=rng)
        out = disc.forward(rng.normal(size=(1, 7, 64, 64)).astype(np.float32))
        assert out.shape == (1, 1, 6, 6)

    def test_outputs_are_logits(self, rng):
        disc = PatchDiscriminator(in_channels=7, base_filters=4, rng=rng)
        out = disc.forward(
            5 * rng.normal(size=(1, 7, 64, 64)).astype(np.float32))
        # Logits are unbounded; sigmoid lives in the loss.
        assert out.min() < 0 or out.max() > 1

    def test_backward_returns_input_grad(self, rng):
        disc = PatchDiscriminator(in_channels=7, base_filters=4, rng=rng)
        x = rng.normal(size=(1, 7, 64, 64)).astype(np.float32)
        out = disc.forward(x)
        grad = disc.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_channel_mismatch_raises(self, rng):
        disc = PatchDiscriminator(in_channels=7, base_filters=4, rng=rng)
        with pytest.raises(ValueError):
            disc.forward(np.zeros((1, 6, 64, 64), dtype=np.float32))
