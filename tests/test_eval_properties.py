"""Property tests for the metric registry (hypothesis).

Three families pin the algebra of the metrics down:

* **dihedral invariance** — rotating/flipping prediction and target
  *jointly* (the training augmentation) must not change any image-level
  score;
* **threshold monotonicity** — against a binary target, raising the
  congestion threshold only shrinks the predicted hotspot set, so recall
  (and the ROC sweep's rates) never increase;
* **batched-vs-loop equality** — every registered metric evaluated over
  a batch equals the same metric evaluated sample by sample, exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import NUM_DIHEDRAL, augment_pair
from repro.eval.metrics import (
    METRICS,
    hotspot_precision,
    hotspot_recall,
    metric_suite,
    roc_curve,
)
from repro.viz.colors import utilization_to_rgb

SEEDS = st.integers(0, 500)
INDICES = st.integers(0, NUM_DIHEDRAL - 1)

#: Metrics computed from integer pixel counts (exact under dihedral
#: transforms); float reductions reorder their sums and get an epsilon.
_EXACT_UNDER_DIHEDRAL = {"accuracy", "hotspot_precision@0.5",
                         "hotspot_recall@0.5", "hotspot_iou@0.5",
                         "hotspot_precision@0.7", "hotspot_recall@0.7",
                         "hotspot_iou@0.7"}

#: SSIM accumulates its window moments in float32, so reordered sums
#: drift at float32 resolution rather than float64.
_DIHEDRAL_TOLERANCE = {"ssim": 1e-5}


def rand_pair(seed: int, n: int = 2, size: int = 8):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3, size, size)), rng.random((n, 3, size, size))


def binary_heatmap(seed: int, size: int = 8) -> np.ndarray:
    """(3, H, W) image whose decoded utilization is exactly 0 or 1."""
    rng = np.random.default_rng(seed)
    u = (rng.random((size, size)) < 0.4).astype(np.float64)
    return np.moveaxis(utilization_to_rgb(u), -1, 0).astype(np.float64)


class TestDihedralInvariance:
    @settings(max_examples=24, deadline=None)
    @given(seed=SEEDS, index=INDICES)
    def test_all_metrics_invariant_under_joint_transform(self, seed, index):
        pred, target = rand_pair(seed, n=1)
        moved_pred, moved_target = augment_pair(pred[0], target[0], index)
        for name, metric in METRICS.items():
            before = metric(pred[0], target[0])
            after = metric(np.ascontiguousarray(moved_pred),
                           np.ascontiguousarray(moved_target))
            if name in _EXACT_UNDER_DIHEDRAL:
                assert before == after, name
            else:
                tolerance = _DIHEDRAL_TOLERANCE.get(name, 1e-9)
                assert after == pytest.approx(before, abs=tolerance), name


class TestThresholdMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_recall_never_increases_with_threshold(self, seed):
        """Against a binary target, a higher congestion threshold can only
        shrink the predicted hotspot set — recall is non-increasing."""
        rng = np.random.default_rng(seed)
        pred = np.moveaxis(
            utilization_to_rgb(rng.random((8, 8))), -1, 0)
        target = binary_heatmap(seed + 1)
        thresholds = np.linspace(0.05, 0.95, 10)
        recalls = [hotspot_recall(pred, target, float(t))
                   for t in thresholds]
        assert all(a >= b - 1e-12 for a, b in zip(recalls, recalls[1:]))

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_roc_sweep_rates_never_increase(self, seed):
        pred, target = rand_pair(seed, n=2)
        fpr, tpr = roc_curve(pred, target)
        assert np.all(np.diff(fpr, axis=1) <= 1e-12)
        assert np.all(np.diff(tpr, axis=1) <= 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, threshold=st.floats(0.05, 0.95))
    def test_precision_and_recall_bounded(self, seed, threshold):
        pred, target = rand_pair(seed, n=1)
        precision = hotspot_precision(pred[0], target[0], threshold)
        recall = hotspot_recall(pred[0], target[0], threshold)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0


class TestBatchedVsLoop:
    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS, n=st.integers(1, 6))
    def test_every_registered_metric_matches_per_sample_loop(self, seed, n):
        """The registry's acceptance property: one vectorized pass over a
        batch is bitwise the per-sample loop."""
        pred, target = rand_pair(seed, n=n)
        for name, metric in metric_suite().items():
            batched = np.asarray(metric(pred, target))
            looped = np.array([metric(pred[i], target[i])
                               for i in range(n)])
            np.testing.assert_array_equal(batched, looped,
                                          err_msg=name)
