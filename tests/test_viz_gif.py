"""Animated GIF writer tests."""

import struct

import numpy as np
import pytest

from repro.viz.gif import _PALETTE, quantize, write_gif


class TestQuantize:
    def test_indices_in_palette_range(self):
        rng = np.random.default_rng(0)
        frame = rng.random((8, 8, 3)).astype(np.float32)
        indices = quantize(frame)
        assert indices.max() < 252
        assert indices.min() >= 0

    def test_quantization_error_bounded(self):
        rng = np.random.default_rng(1)
        frame = (rng.random((16, 16, 3)) * 255).astype(np.uint8)
        indices = quantize(frame)
        restored = _PALETTE[indices]
        # 6/7/6 levels: max error is half a level step.
        assert np.abs(restored.astype(int) - frame.astype(int)).max() <= 26

    def test_primary_colors_exact(self):
        frame = np.zeros((1, 3, 3), dtype=np.uint8)
        frame[0, 0] = (255, 0, 0)
        frame[0, 1] = (0, 0, 0)
        frame[0, 2] = (255, 255, 255)
        restored = _PALETTE[quantize(frame)]
        np.testing.assert_array_equal(restored, frame)


class TestWriteGif:
    def test_header_and_dimensions(self, tmp_path):
        frames = [np.zeros((4, 6, 3), dtype=np.uint8)] * 2
        path = write_gif(tmp_path / "x.gif", frames)
        blob = path.read_bytes()
        assert blob[:6] == b"GIF89a"
        width, height = struct.unpack("<HH", blob[6:10])
        assert (width, height) == (6, 4)
        assert blob[-1] == 0x3B  # trailer

    def test_frame_count_encoded(self, tmp_path):
        frames = [np.full((4, 4, 3), i * 40, dtype=np.uint8)
                  for i in range(5)]
        path = write_gif(tmp_path / "multi.gif", frames)
        blob = path.read_bytes()
        # One image descriptor (0x2C at a block boundary) per frame; count
        # graphic-control extensions instead (unambiguous marker).
        assert blob.count(b"\x21\xF9\x04") == 5

    def test_empty_frames_raise(self, tmp_path):
        with pytest.raises(ValueError):
            write_gif(tmp_path / "x.gif", [])

    def test_mismatched_sizes_raise(self, tmp_path):
        frames = [np.zeros((4, 4, 3)), np.zeros((5, 4, 3))]
        with pytest.raises(ValueError):
            write_gif(tmp_path / "x.gif", frames)

    def test_float_frames_accepted(self, tmp_path):
        frames = [np.random.default_rng(0).random((8, 8, 3))]
        path = write_gif(tmp_path / "f.gif", frames, loop=False)
        assert path.stat().st_size > 100

    def test_compression_beats_raw_on_flat_frames(self, tmp_path):
        frames = [np.zeros((32, 32, 3), dtype=np.uint8)] * 3
        path = write_gif(tmp_path / "flat.gif", frames)
        raw_size = 3 * 32 * 32
        # Palette alone is 768 bytes; LZW must crush the flat image data.
        assert path.stat().st_size < 768 + 200 + raw_size // 8
