"""Ring time-series store, snapshot flattening, and the dashboard."""

import io
import json

import pytest

from repro.obs.aggregate import aggregate_snapshots
from repro.obs.dashboard import (
    Dashboard,
    DirectorySource,
    firing_from_log,
    make_source,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import write_snapshot
from repro.obs.timeseries import TimeSeriesStore, flatten_export


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve_requests_total").inc(100)
    registry.gauge("serve_queue_depth").set(3.0)
    h = registry.histogram("serve_request_latency_seconds",
                           buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5):
        h.observe(value)
    registry.counter("http_requests_total",
                     labelnames=("route",)).labels(
        route="/v1/forecast").inc(7)
    return registry


class TestFlatten:
    def test_flatten_kinds(self):
        flat = flatten_export(sample_registry().export())
        assert flat["serve_requests_total"] == 100
        assert flat["serve_queue_depth"] == 3.0
        assert flat["serve_request_latency_seconds.count"] == 3
        assert flat["serve_request_latency_seconds.p50"] == \
            pytest.approx(0.05, abs=0.05)
        assert flat["http_requests_total{route=/v1/forecast}"] == 7

    def test_flatten_merged_export(self):
        registry = sample_registry()
        fleet = aggregate_snapshots(
            [{"role": "serve", "worker": "a",
              "families": registry.export()}])
        assert flatten_export(fleet.merged)["serve_requests_total"] == 100


class TestStore:
    def test_capacity_bounds_series(self):
        store = TimeSeriesStore(capacity=3)
        for t in range(10):
            store.record(float(t), {"n": float(t)})
        points = store.series("n")
        assert len(points) == 3
        assert points[0] == (7.0, 7.0)

    def test_rate_and_delta_over_window(self):
        store = TimeSeriesStore()
        for t, value in [(0.0, 0.0), (5.0, 50.0), (10.0, 100.0)]:
            store.record(t, {"n": value})
        assert store.delta("n", 10.0) == 100.0
        assert store.rate("n", 10.0) == 10.0
        # A narrow window only sees the last two points.
        assert store.rate("n", 5.0) == 10.0
        assert store.delta("n", 5.0) == 50.0

    def test_counter_reset_clamps_to_zero(self):
        store = TimeSeriesStore()
        store.record(0.0, {"n": 100.0})
        store.record(1.0, {"n": 5.0})     # a worker restarted
        assert store.delta("n", 10.0) == 0.0
        assert store.rate("n", 10.0) == 0.0

    def test_insufficient_points(self):
        store = TimeSeriesStore()
        assert store.rate("missing", 10.0) is None
        store.record(0.0, {"n": 1.0})
        assert store.rate("n", 10.0) is None
        assert store.latest("n") == 1.0
        assert store.latest("missing") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(capacity=1)


class TestDashboard:
    def make_dir_source(self, tmp_path, requests=100):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total").inc(requests)
        registry.gauge("serve_cache_hit_ratio").set(0.5)
        h = registry.histogram("serve_request_latency_seconds",
                               buckets=(0.01, 0.1))
        h.observe(0.05)
        write_snapshot(registry, tmp_path / "telemetry", "serve", "a")
        return DirectorySource(tmp_path)

    def test_frame_renders_serve_block(self, tmp_path):
        dashboard = Dashboard(self.make_dir_source(tmp_path))
        dashboard.tick(now=100.0)
        frame = dashboard.frame(now=100.0)
        assert "repro obs top" in frame
        assert "workers: 1" in frame
        assert "p99" in frame
        assert "cache hit" in frame
        assert "alerts: none firing" in frame

    def test_frame_shows_firing_alert_from_log(self, tmp_path):
        source = self.make_dir_source(tmp_path)
        events = [
            {"rule": "latency-high", "state": "firing", "at_unix": 1.0,
             "value": 0.5, "severity": "page",
             "condition": "serve_request_latency_seconds.p99 > 0.25"},
        ]
        with open(tmp_path / "alerts.jsonl", "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        dashboard = Dashboard(source)
        dashboard.tick(now=100.0)
        frame = dashboard.frame(now=100.0)
        assert "ALERTS FIRING (1)" in frame
        assert "latency-high" in frame

    def test_rates_from_two_ticks(self, tmp_path):
        source = self.make_dir_source(tmp_path)
        dashboard = Dashboard(source, window=30.0)
        dashboard.tick(now=100.0)
        # Re-publish with a larger total, 10 seconds later.
        self.make_dir_source(tmp_path, requests=200)
        dashboard.tick(now=110.0)
        assert dashboard.store.rate("serve_requests_total", 30.0) == \
            pytest.approx(10.0)
        assert "rps" in dashboard.frame(now=110.0)

    def test_worker_rows_for_sweep(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("train_steps_total").inc(42)
        write_snapshot(registry, tmp_path / "telemetry", "sweep", "run-a")
        dashboard = Dashboard(DirectorySource(tmp_path))
        dashboard.tick(now=50.0)
        frame = dashboard.frame(now=50.0)
        assert "sweep-run-a" in frame
        assert "steps" in frame

    def test_firing_from_log_last_transition_wins(self):
        events = [
            {"rule": "a", "state": "firing"},
            {"rule": "a", "state": "resolved"},
            {"rule": "b", "state": "firing"},
        ]
        firing = firing_from_log(events)
        assert [event["rule"] for event in firing] == ["b"]

    def test_make_source_picks_directory_or_http(self, tmp_path):
        assert isinstance(make_source(str(tmp_path)), DirectorySource)
        http = make_source("http://127.0.0.1:9999")
        assert http.target == "http://127.0.0.1:9999"
        bare = make_source("127.0.0.1:9999")
        assert bare.target == "http://127.0.0.1:9999"

    def test_run_top_once_writes_frame(self, tmp_path):
        from repro.obs.dashboard import run_top

        stream = io.StringIO()
        dashboard = run_top(self.make_dir_source(tmp_path), interval=0.01,
                            frames=1, stream=stream, color=False)
        output = stream.getvalue()
        assert "repro obs top" in output
        assert dashboard.samples == 1
        assert "\x1b[" not in output    # color off -> no ANSI codes
