"""Span tracing: disabled identity, nesting, exception safety, export."""

import io
import json
import threading
import time

import pytest

from repro.obs.trace import (
    Tracer,
    get_tracer,
    read_spans,
    set_tracer,
    write_chrome_trace,
)


def spans_from(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestDisabledTracer:
    def test_disabled_tracer_reports_disabled(self):
        assert Tracer(None).enabled is False

    def test_span_is_the_shared_noop_singleton(self):
        """The identity fast path: a disabled tracer allocates nothing —
        every span() call returns the very same object."""
        tracer = Tracer(None)
        first = tracer.span("a", key="value")
        second = tracer.span("b")
        assert first is second
        with first as span:
            span.set(anything="goes")  # accepted and dropped

    def test_complete_and_instant_are_noops(self):
        tracer = Tracer(None)
        tracer.complete("x", 0, 100)
        tracer.instant("y")
        tracer.flush()
        tracer.close()

    def test_default_tracer_is_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        previous = set_tracer(None)
        try:
            assert get_tracer().enabled is False
            assert get_tracer() is get_tracer()
        finally:
            set_tracer(previous)

    def test_set_tracer_swaps_and_returns_previous(self):
        replacement = Tracer(None)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            assert set_tracer(previous) is replacement


class TestSpanRecords:
    def test_span_emits_one_json_line(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("work", model="tiny"):
            pass
        (record,) = spans_from(sink)
        assert record["name"] == "work"
        assert record["args"] == {"model": "tiny"}
        assert record["depth"] == 0
        assert record["dur_us"] >= 0
        assert record["tid"] == threading.get_ident()

    def test_nesting_records_depth(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = spans_from(sink)  # inner closes (emits) first
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        # The outer span brackets the inner one.
        assert outer["ts_us"] <= inner["ts_us"]
        assert (outer["ts_us"] + outer["dur_us"]
                >= inner["ts_us"] + inner["dur_us"])

    def test_exception_closes_span_tags_error_and_propagates(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = spans_from(sink)
        assert record["args"]["error"] == "ValueError"
        # The stack unwound: the next span is top-level again.
        with tracer.span("after"):
            pass
        assert spans_from(sink)[-1]["depth"] == 0

    def test_set_attaches_args_mid_span(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("batch") as span:
            span.set(size=4)
        (record,) = spans_from(sink)
        assert record["args"] == {"size": 4}

    def test_complete_records_external_timing(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.complete("queue_wait", 1_000_000, 2_500_000, model="m")
        (record,) = spans_from(sink)
        assert record["dur_us"] == 2500
        assert record["args"] == {"model": "m"}

    def test_instant_has_zero_duration(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.instant("cache_hit")
        (record,) = spans_from(sink)
        assert record["dur_us"] == 0


class TestFileSink:
    def test_path_sink_appends_and_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("one"):
                pass
        with Tracer(path) as tracer:  # reopen: append, not truncate
            with tracer.span("two"):
                pass
        spans = read_spans(path)
        assert [span["name"] for span in spans] == ["one", "two"]

    def test_flush_batching_defers_then_flush_forces(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, flush_every=1000)
        with tracer.span("buffered"):
            pass
        tracer.flush()
        assert len(read_spans(path)) == 1
        tracer.close()


class TestChromeExport:
    def test_export_loads_as_trace_event_json(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "chrome.json"
        with Tracer(trace) as tracer:
            with tracer.span("step", epoch=0):
                time.sleep(0.002)  # long enough that dur_us > 0
            tracer.instant("marker")
        count = write_chrome_trace(trace, out)
        assert count == 2
        document = json.loads(out.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = {event["name"]: event for event in document["traceEvents"]}
        step = events["step"]
        assert step["ph"] == "X" and "dur" in step and "ts" in step
        assert step["args"]["epoch"] == 0
        marker = events["marker"]
        assert marker["ph"] == "i" and marker["s"] == "t"

    def test_export_accepts_span_list(self, tmp_path):
        spans = [{"name": "a", "ts_us": 1, "dur_us": 5, "depth": 2}]
        out = tmp_path / "chrome.json"
        assert write_chrome_trace(spans, out) == 1
        (event,) = json.loads(out.read_text())["traceEvents"]
        assert event["args"]["depth"] == 2
