"""Runner tests: run-directory layout, eval hooks, publishing, phases."""

import json

import numpy as np
import pytest

from repro.gan import Dataset, Pix2PixTrainer
from repro.train import EvalSpec, FinetuneSpec, Runner, TrainSpec
from tests.conftest import make_dataset

SIZE = 16


@pytest.fixture(scope="module")
def dataset():
    base = make_dataset(4, size=SIZE, design="a")
    other = make_dataset(4, size=SIZE, design="b", seed0=30)
    return Dataset(list(base) + list(other))


def basic_spec(name: str, **overrides) -> TrainSpec:
    values = dict(
        name=name, data="inline", scale="smoke", seed=2, epochs=2,
        order="stream", model={"base_filters": 4, "disc_filters": 4})
    values.update(overrides)
    return TrainSpec(**values)


class TestRunDirectory:
    @pytest.fixture(scope="class")
    def finished(self, dataset, tmp_path_factory):
        root = tmp_path_factory.mktemp("runner")
        spec = basic_spec("layout", eval=EvalSpec(every_epochs=1))
        runner = Runner.create(spec, root, dataset=dataset)
        result = runner.run()
        return root / "layout", result

    def test_layout(self, finished):
        run_dir, result = finished
        assert result.completed
        for name in ("spec.json", "status.json", "losses.jsonl",
                     "evals.jsonl", "checkpoints", "export"):
            assert (run_dir / name).exists(), name
        assert (run_dir / "checkpoints" / "latest.json").exists()

    def test_spec_json_round_trips(self, finished):
        run_dir, _ = finished
        spec = TrainSpec.load(run_dir / "spec.json")
        assert spec.name == "layout"

    def test_loss_lines_per_step_and_epoch(self, finished):
        run_dir, result = finished
        lines = [json.loads(line) for line in
                 (run_dir / "losses.jsonl").read_text().splitlines()]
        steps = [l for l in lines if "event" not in l]
        epochs = [l for l in lines if l.get("event") == "epoch"]
        assert len(steps) == result.global_step == 16   # 8 samples x 2
        assert len(epochs) == 2
        assert {"g_total", "g_gan", "g_l1", "d_total", "d_real",
                "d_fake"} <= set(steps[0])

    def test_status_reflects_completion(self, finished):
        run_dir, _ = finished
        status = json.loads((run_dir / "status.json").read_text())
        assert status["state"] == "completed"
        assert status["global_step"] == 16
        assert status["last_losses"]["samples"] == 8

    def test_eval_hook_tracks_best(self, finished):
        run_dir, result = finished
        records = [json.loads(line) for line in
                   (run_dir / "evals.jsonl").read_text().splitlines()]
        assert len(records) == 2
        assert all("nrms" in record["metrics"] for record in records)
        tracked = [record["metrics"]["nrms"] for record in records]
        assert result.best_value == min(tracked)
        assert (run_dir / "export" / "layout-best.npz").exists()

    def test_publish_loads_in_serve_registry(self, finished):
        from repro.serve.registry import load_checkpoint

        run_dir, result = finished
        export = run_dir / "export" / "layout.npz"
        assert export in result.exported
        model, info = load_checkpoint(export)
        assert info.model_id == "layout"
        assert info.image_size == SIZE


class TestPhases:
    def test_strategy2_runs_both_phases(self, dataset, tmp_path):
        spec = basic_spec("s2", order="shuffle", holdout_design="b",
                          finetune=FinetuneSpec(epochs=1, pairs=2))
        runner = Runner.create(spec, tmp_path, dataset=dataset)
        seen = []
        result = runner.run(on_phase=lambda name, model:
                            seen.append(name))
        assert result.completed
        assert seen == ["train", "finetune"]
        assert set(result.histories) == {"train", "finetune"}
        assert result.histories["train"].epochs == 2
        assert result.histories["finetune"].epochs == 1
        # 4 train samples x 2 epochs + 2 finetune pairs x 1 epoch
        assert result.global_step == 10

    def test_finetune_restores_base_learning_rate(self, dataset, tmp_path):
        spec = basic_spec("lr", order="shuffle", holdout_design="b",
                          finetune=FinetuneSpec(epochs=1, pairs=2,
                                                lr_scale=0.25))
        runner = Runner.create(spec, tmp_path, dataset=dataset)
        runner.run()
        assert runner.model.opt_g.lr == runner.model.config.learning_rate

    def test_matches_trainer_fit_bitwise(self, dataset, tmp_path):
        """The shuffle-order runner IS the trainer loop, bit for bit."""
        from repro.gan import Pix2Pix, Pix2PixConfig

        train = dataset.of_design("a")
        spec = basic_spec("parity", order="shuffle", epochs=2,
                          publish=False)
        runner = Runner(spec, dataset=train)
        runner.run()

        model = Pix2Pix(Pix2PixConfig.from_scale(
            spec.resolve_scale(), image_size=SIZE, seed=spec.seed,
            base_filters=4, disc_filters=4))
        trainer = Pix2PixTrainer(model, seed=spec.seed)
        trainer.fit(train, 2)
        for (name, expected), (_, actual) in zip(
                model.generator.named_parameters(),
                runner.model.generator.named_parameters()):
            np.testing.assert_array_equal(actual.data, expected.data,
                                          err_msg=name)


class TestDataResolution:
    def test_inline_without_dataset_is_an_error(self):
        with pytest.raises(ValueError, match="inline"):
            Runner(basic_spec("x"))

    def test_eval_hook_does_not_change_store_trajectory(self, dataset,
                                                        tmp_path):
        """Adding an observation-only eval hook to a streaming store run
        must leave sample order — and therefore the losses — untouched."""
        from repro.data import ShardedStore
        from repro.train import EvalSpec

        store_root = tmp_path / "store"
        ShardedStore.from_dataset(store_root, dataset, shard_size=3)
        losses = {}
        for name, eval_spec in (("plain", None),
                                ("hooked", EvalSpec(every_epochs=1))):
            spec = basic_spec(name, data=f"store:{store_root}",
                              epochs=1, eval=eval_spec, publish=False)
            runner = Runner.create(spec, tmp_path / "runs")
            result = runner.run()
            losses[name] = result.histories["train"].g_total
            if eval_spec is not None:
                assert result.evals, "eval hook did not fire"
        assert losses["plain"] == losses["hooked"]

    def test_fresh_runner_over_existing_dir_restarts_it(self, dataset,
                                                        tmp_path):
        """Direct construction restarts a run directory: no appended
        logs, no stale checkpoints or exports from the prior occupant."""
        spec = basic_spec("again", publish=False)
        Runner(spec, tmp_path / "again", dataset=dataset).run()
        first = (tmp_path / "again" / "losses.jsonl").read_bytes()
        stale = tmp_path / "again" / "export" / "stale.npz"
        stale.write_bytes(b"junk")
        Runner(spec, tmp_path / "again", dataset=dataset).run()
        assert (tmp_path / "again" / "losses.jsonl").read_bytes() == first
        assert not stale.exists()

    def test_archive_ref_loads_dataset(self, dataset, tmp_path):
        archive = tmp_path / "data.npz"
        dataset.save(archive)
        spec = basic_spec("arch", data=f"archive:{archive}", publish=False)
        runner = Runner(spec, run_dir=None)
        result = runner.run()
        assert result.completed
        assert result.global_step == 16

    def test_holdout_design_excluded_from_training(self, dataset, tmp_path):
        spec = basic_spec("hold", holdout_design="b", publish=False)
        runner = Runner(spec, dataset=dataset)
        assert runner.phases[0].source.num_samples == 4
        assert {sample.design for sample in runner.eval_dataset} == {"b"}

    def test_missing_finetune_pairs_is_an_error(self, dataset):
        spec = basic_spec("few", order="shuffle", holdout_design="b",
                          finetune=FinetuneSpec(epochs=1, pairs=99))
        with pytest.raises(ValueError, match="99 pairs"):
            Runner(spec, dataset=dataset)
