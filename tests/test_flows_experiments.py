"""Experiment orchestration tests at smoke scale."""

import numpy as np
import pytest

from repro.config import SMOKE, custom_scale
from repro.flows import (
    build_design_bundle,
    build_suite_bundles,
    live_forecast,
    measure_speedup,
    region_mask,
    run_ablation,
    run_exploration,
    run_grayscale_ablation,
    run_table2,
)
from repro.flows.experiments import ABLATION_VARIANTS, AblationResult
from repro.fpga import PlacerOptions
from repro.fpga.generators import scaled_suite
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer


@pytest.fixture(scope="module")
def bundle():
    spec = scaled_suite(SMOKE)[2]
    return build_design_bundle(spec, SMOKE, num_placements=5, seed=2)


@pytest.fixture(scope="module")
def trainer(bundle):
    model = Pix2Pix(Pix2PixConfig.from_scale(
        SMOKE, image_size=bundle.layout.image_size, seed=0))
    trainer = Pix2PixTrainer(model, seed=0)
    trainer.fit(bundle.dataset, epochs=2)
    return trainer


class TestTable2:
    def test_rows_structure(self):
        bundles = build_suite_bundles(SMOKE, num_placements=3, seed=4,
                                      designs=["diffeq1", "diffeq2"])
        rows = run_table2(SMOKE, bundles=bundles)
        assert [row.design for row in rows] == ["diffeq1", "diffeq2"]
        for row in rows:
            assert 0.0 <= row.acc1 <= 1.0
            assert 0.0 <= row.acc2 <= 1.0
            assert 0.0 <= row.top10 <= 1.0
            assert row.num_placements == 3
            assert row.num_luts > 0

    def test_row_formatting(self):
        from repro.flows.experiments import Table2Row

        row = Table2Row("x", 100, 50, 200, 4, 0.5, 0.6, 0.75)
        header = Table2Row.header()
        line = row.format()
        assert "Acc.1" in header and "Top10" in header
        assert "50.0%" in line and "75%" in line


class TestAblation:
    def test_three_variants_trained(self, bundle):
        scale = custom_scale(SMOKE, epochs=2)
        results = run_ablation(scale, bundle, epochs=2, seed=0)
        assert set(results) == set(ABLATION_VARIANTS)
        for result in results.values():
            assert result.history.epochs == 2
            assert result.forecast01.shape == result.truth01.shape
            assert 0.0 <= result.accuracy <= 1.0

    def test_loss_roughness_of_constant_is_zero(self):
        assert AblationResult.loss_roughness([1.0, 1.0, 1.0, 1.0]) == 0.0

    def test_loss_roughness_detects_noise(self):
        smooth = [1.0, 0.9, 0.8, 0.7]
        noisy = [1.0, 0.2, 1.1, 0.1]
        assert (AblationResult.loss_roughness(noisy)
                > AblationResult.loss_roughness(smooth))

    def test_requires_two_samples(self, bundle):
        from repro.gan.dataset import Dataset

        tiny = type(bundle)(
            spec=bundle.spec, netlist=bundle.netlist, arch=bundle.arch,
            layout=bundle.layout, dataset=Dataset([bundle.dataset[0]]),
            channel_width=bundle.channel_width,
            placements=bundle.placements[:1])
        with pytest.raises(ValueError):
            run_ablation(SMOKE, tiny, epochs=1)


class TestGrayscale:
    def test_comparison_fields(self, bundle):
        comparison = run_grayscale_ablation(SMOKE, bundle, epochs=1,
                                            holdout=1)
        assert 0.0 <= comparison.color_accuracy <= 1.0
        assert 0.0 <= comparison.gray_accuracy <= 1.0
        assert comparison.color_train_seconds > 0
        assert comparison.gray_infer_seconds > 0
        assert comparison.accuracy_drop == pytest.approx(
            comparison.color_accuracy - comparison.gray_accuracy)

    def test_grayscale_dataset_collapses_channels(self, bundle):
        from repro.flows.experiments import _grayscale_dataset

        gray = _grayscale_dataset(bundle.dataset)
        sample = gray[0]
        np.testing.assert_allclose(sample.x[0], sample.x[1], atol=1e-6)
        np.testing.assert_allclose(sample.x[1], sample.x[2], atol=1e-6)
        # Connectivity channel untouched.
        np.testing.assert_allclose(sample.x[3], bundle.dataset[0].x[3])


class TestExploration:
    def test_region_masks_partition(self):
        upper = region_mask(16, "upper")
        lower = region_mask(16, "lower")
        assert not (upper & lower).any()
        assert (upper | lower).all()
        assert region_mask(16, "overall").all()

    def test_unknown_region_raises(self):
        with pytest.raises(ValueError):
            region_mask(16, "diagonal")

    def test_outcomes_cover_figure9(self, bundle, trainer):
        outcome = run_exploration(bundle, trainer)
        names = [o.objective for o in outcome.outcomes]
        assert names == ["overall-max", "overall-min", "upper-min",
                         "lower-min", "right-min"]
        for obj in outcome.outcomes:
            assert 0 <= obj.chosen_index < len(bundle.dataset)
            assert obj.regret >= 0.0

    def test_max_objective_picks_higher_than_min(self, bundle, trainer):
        outcome = run_exploration(bundle, trainer)
        overall_max = outcome.by_objective("overall-max")
        overall_min = outcome.by_objective("overall-min")
        assert overall_max.predicted_score >= overall_min.predicted_score

    def test_by_objective_missing_raises(self, bundle, trainer):
        outcome = run_exploration(bundle, trainer)
        with pytest.raises(KeyError):
            outcome.by_objective("sideways-min")


class TestSpeedupAndRealtime:
    def test_speedup_positive(self, bundle, trainer):
        report = measure_speedup(bundle, trainer, repeats=2)
        assert report.speedup > 0
        assert report.mean_route_seconds > 0

    def test_live_forecast_produces_frames(self, bundle, trainer, tmp_path):
        frames = live_forecast(
            bundle, trainer.model,
            options=PlacerOptions(seed=5, alpha_t=0.5, inner_num=0.25,
                                  max_temperatures=6),
            snapshot_every=2, out_dir=tmp_path)
        assert len(frames) >= 2
        for frame in frames:
            assert frame.forecast.shape == (bundle.layout.image_size,
                                            bundle.layout.image_size, 3)
            assert frame.forecast_seconds > 0
            assert 0.0 <= frame.predicted_congestion <= 1.0
        pngs = list(tmp_path.glob("frame_*_forecast.png"))
        assert len(pngs) == len(frames)

    def test_frames_track_annealing_temperatures(self, bundle, trainer):
        frames = live_forecast(
            bundle, trainer.model,
            options=PlacerOptions(seed=5, alpha_t=0.5, inner_num=0.25,
                                  max_temperatures=8),
            snapshot_every=1)
        temps = [frame.temperature for frame in frames]
        assert all(b <= a for a, b in zip(temps, temps[1:]))

    def test_live_forecast_through_engine_matches_direct(self, bundle,
                                                         trainer):
        from repro.serve import BatchingEngine, ForecastCache, ModelRegistry

        options = PlacerOptions(seed=5, alpha_t=0.5, inner_num=0.25,
                                max_temperatures=6)
        direct = live_forecast(bundle, trainer.model, options=options,
                               snapshot_every=2)
        engine = BatchingEngine(ModelRegistry(), max_batch=4,
                                cache=ForecastCache(32))
        with engine:
            served = live_forecast(bundle, trainer.model, options=options,
                                   snapshot_every=2, engine=engine)
        assert len(served) == len(direct)
        for a, b in zip(direct, served):
            assert np.array_equal(a.forecast, b.forecast)
            assert a.predicted_congestion == b.predicted_congestion
        assert engine.stats()["requests"] == len(served)

    def test_live_forecast_requires_model_or_engine(self, bundle):
        with pytest.raises(ValueError, match="model"):
            live_forecast(bundle)

    def test_engine_path_serves_the_model_passed_not_a_stale_one(
            self, bundle):
        """A second live_forecast with a new model must not reuse the
        first call's 'realtime' registration."""
        from repro.serve import BatchingEngine, ModelRegistry

        size = bundle.layout.image_size
        model_a = Pix2Pix(Pix2PixConfig.from_scale(SMOKE, image_size=size,
                                                   seed=11))
        model_b = Pix2Pix(Pix2PixConfig.from_scale(SMOKE, image_size=size,
                                                   seed=12))
        options = PlacerOptions(seed=5, alpha_t=0.5, inner_num=0.25,
                                max_temperatures=4)
        with BatchingEngine(ModelRegistry(), max_batch=2) as engine:
            live_forecast(bundle, model_a, options=options, snapshot_every=2,
                          engine=engine)
            served = live_forecast(bundle, model_b, options=options,
                                   snapshot_every=2, engine=engine)
            # Repeating with model_a reuses its registration by identity.
            live_forecast(bundle, model_a, options=options, snapshot_every=2,
                          engine=engine)
        assert engine.registry.model_ids == ["realtime", "realtime-2"]
        direct = live_forecast(bundle, model_b, options=options,
                               snapshot_every=2)
        for a, b in zip(direct, served):
            assert np.array_equal(a.forecast, b.forecast)
