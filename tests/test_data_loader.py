"""Streaming loader tests: parity with the in-memory path, memory bounds."""

import numpy as np
import pytest

from repro.data import (
    MemoryLoader,
    ShardedStore,
    StreamingLoader,
    iter_eval_batches,
    shard_eval_arrays,
)
from repro.gan import Dataset, Pix2Pix, Pix2PixConfig, Pix2PixTrainer
from tests.conftest import make_dataset, make_sample

SIZE = 16
COUNT = 6
SHARD = 2


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(COUNT, size=SIZE)


@pytest.fixture(scope="module")
def store(dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("loader") / "store"
    return ShardedStore.from_dataset(root, dataset, shard_size=SHARD)


def make_trainer(seed=1):
    model = Pix2Pix(Pix2PixConfig(image_size=SIZE, base_filters=4,
                                  disc_filters=4, seed=seed))
    return Pix2PixTrainer(model, seed=seed)


class TestEpochStreams:
    def test_covers_every_sample_once(self, store, dataset):
        loader = StreamingLoader(store, seed=5)
        seen = [x[0] for x, _ in loader.epoch(0)]
        assert len(seen) == COUNT
        matches = [any(np.array_equal(x, s.x) for s in dataset)
                   for x in seen]
        assert all(matches)

    def test_epochs_reshuffle_but_are_reproducible(self, store):
        loader = StreamingLoader(store, seed=5)
        epoch0 = [x[0] for x, _ in loader.epoch(0)]
        epoch1 = [x[0] for x, _ in loader.epoch(1)]
        again = [x[0] for x, _ in StreamingLoader(store, seed=5).epoch(0)]
        assert all(np.array_equal(a, b) for a, b in zip(epoch0, again))
        assert not all(np.array_equal(a, b)
                       for a, b in zip(epoch0, epoch1))

    def test_batching_shapes(self, store):
        loader = StreamingLoader(store, seed=0, batch_size=4)
        batches = list(loader.epoch(0))
        assert [x.shape[0] for x, _ in batches] == [4, 2]
        assert batches[0][0].shape == (4, 4, SIZE, SIZE)
        assert batches[0][1].shape == (4, 3, SIZE, SIZE)

    def test_unshuffled_order_is_store_order(self, store, dataset):
        loader = StreamingLoader(store, seed=0, shuffle=False)
        xs = [x[0] for x, _ in loader.epoch(0)]
        for sample, x in zip(dataset, xs):
            np.testing.assert_array_equal(sample.x, x)

    def test_memory_stays_bounded_to_one_shard(self, store):
        loader = StreamingLoader(store, seed=3)
        for _ in loader.epoch(0):
            pass
        assert loader.peak_resident_samples == SHARD
        assert loader.peak_resident_samples < len(loader)
        assert loader.shard_loads == store.num_shards


class TestEvalIteration:
    def test_store_order_no_shuffle_no_augment(self, store, dataset):
        xs = [x for x, _, _ in iter_eval_batches(store, batch_size=1)]
        assert len(xs) == COUNT
        for sample, (x,) in zip(dataset, xs):
            np.testing.assert_array_equal(sample.x, x)

    def test_batches_never_cross_shards(self, store):
        sizes = [x.shape[0]
                 for x, _, _ in iter_eval_batches(store, batch_size=4)]
        # Shards hold SHARD samples each, so a larger batch size still
        # yields per-shard batches (parallel shard workers see the same
        # batch boundaries as a serial pass).
        assert sizes == [SHARD] * store.num_shards

    def test_design_filter(self, tmp_path):
        mixed = Dataset([make_sample("a", size=SIZE, seed=1),
                         make_sample("b", size=SIZE, seed=2),
                         make_sample("a", size=SIZE, seed=3)])
        store = ShardedStore.from_dataset(tmp_path / "mixed", mixed,
                                          shard_size=2)
        batches = list(iter_eval_batches(store, designs=["a"]))
        designs = [d for _, _, batch in batches for d in batch]
        assert designs == ["a", "a"]

    def test_shard_eval_arrays_yields_designs(self, store):
        x, y, designs = next(shard_eval_arrays(store, 0, batch_size=2))
        assert x.shape == (2, 4, SIZE, SIZE)
        assert y.shape == (2, 3, SIZE, SIZE)
        assert designs == ["d", "d"]

    def test_invalid_batch_size_rejected(self, store):
        with pytest.raises(ValueError, match="batch_size"):
            list(shard_eval_arrays(store, 0, batch_size=0))


class TestLossParity:
    def test_streaming_matches_in_memory_epoch(self, store, dataset):
        """Acceptance: training from the streaming loader reproduces the
        in-memory pipeline's losses exactly at a fixed seed, while never
        holding more than one shard of samples."""
        streaming_loader = StreamingLoader(store, seed=7, augment=True)
        memory_loader = MemoryLoader(dataset, shard_size=SHARD, seed=7,
                                     augment=True)
        streamed = make_trainer().fit_stream(streaming_loader, epochs=1)
        in_memory = make_trainer().fit_stream(memory_loader, epochs=1)
        assert streamed.g_total == in_memory.g_total
        assert streamed.g_l1 == in_memory.g_l1
        assert streamed.d_total == in_memory.d_total
        assert streaming_loader.peak_resident_samples == SHARD

    def test_fit_stream_trains(self, store):
        trainer = make_trainer()
        history = trainer.fit_stream(StreamingLoader(store, seed=2),
                                     epochs=8)
        assert history.epochs == 8
        assert trainer.history.epochs == 8
        assert history.g_l1[-1] < history.g_l1[0]

    def test_fit_stream_empty_loader_raises(self, tmp_path):
        empty = ShardedStore.create(tmp_path / "empty")
        with pytest.raises(ValueError, match="no samples"):
            make_trainer().fit_stream(StreamingLoader(empty, seed=0),
                                      epochs=1)

    def test_single_virtual_shard_equals_full_shuffle(self, dataset):
        """MemoryLoader with no partitioning is one shard: its epoch is a
        plain full-dataset shuffle."""
        loader = MemoryLoader(dataset, seed=9)
        rng = np.random.default_rng((9, 0))
        rng.permutation(1)                       # shard order draw
        order = rng.permutation(COUNT)
        xs = [x[0] for x, _ in loader.epoch(0)]
        for position, index in enumerate(order):
            np.testing.assert_array_equal(xs[position],
                                          dataset[int(index)].x)


class TestSkipCursor:
    """Mid-epoch resume: epoch(e, skip_batches=k) is the epoch's tail."""

    @pytest.mark.parametrize("batch_size", [1, 2])
    def test_skip_yields_the_exact_tail(self, dataset, batch_size):
        loader = MemoryLoader(dataset, shard_size=SHARD, seed=5,
                              augment=True, batch_size=batch_size)
        full = list(loader.epoch(0))
        for skip in range(len(full) + 1):
            tail = list(loader.epoch(0, skip_batches=skip))
            assert len(tail) == len(full) - skip
            for (x_full, y_full), (x_tail, y_tail) in zip(full[skip:],
                                                          tail):
                np.testing.assert_array_equal(x_tail, x_full)
                np.testing.assert_array_equal(y_tail, y_full)

    def test_streaming_skip_spares_shard_reads(self, store):
        loader = StreamingLoader(store, seed=5, augment=True)
        full = list(loader.epoch(0))
        before = loader.shard_loads
        tail = list(loader.epoch(0, skip_batches=4))   # 2 whole shards
        assert loader.shard_loads - before < store.num_shards
        for (x_full, _), (x_tail, _) in zip(full[4:], tail):
            np.testing.assert_array_equal(x_tail, x_full)

    def test_negative_skip_rejected(self, dataset):
        loader = MemoryLoader(dataset, seed=0)
        with pytest.raises(ValueError, match="skip_batches"):
            list(loader.epoch(0, skip_batches=-1))

    def test_epoch_plan_ignores_global_numpy_state(self, dataset):
        """The shuffle/augment path draws only from the (seed, epoch)
        rng — reseeding the module-level generator must not matter."""
        loader = MemoryLoader(dataset, shard_size=SHARD, seed=3,
                              augment=True)
        np.random.seed(123)
        first = [x.copy() for x, _ in loader.epoch(0)]
        np.random.seed(456)
        second = [x.copy() for x, _ in loader.epoch(0)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
