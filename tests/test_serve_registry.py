"""Model registry: discovery, warm loading, metadata, error paths."""

import numpy as np
import pytest

from repro.serve import ModelRegistry


@pytest.fixture()
def checkpoint_dir(tmp_path, tiny_model, make_checkpoint):
    make_checkpoint("diffeq1", directory=tmp_path, model=tiny_model)
    make_checkpoint("ode", directory=tmp_path, seed=5)
    return tmp_path


class TestFromDirectory:
    def test_discovers_and_loads_all(self, checkpoint_dir):
        registry = ModelRegistry.from_directory(checkpoint_dir)
        assert registry.model_ids == ["diffeq1", "ode"]
        assert len(registry) == 2
        assert "ode" in registry and "nope" not in registry

    def test_loaded_model_forecasts(self, checkpoint_dir, tiny_model):
        registry = ModelRegistry.from_directory(checkpoint_dir)
        x = np.random.default_rng(0).normal(
            size=(4, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(
            registry.get("diffeq1").forecast(x), tiny_model.forecast(x),
            atol=1e-6)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelRegistry.from_directory(tmp_path / "nowhere")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no checkpoints"):
            ModelRegistry.from_directory(tmp_path)

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        np.savez(tmp_path / "junk.npz", stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a Pix2Pix checkpoint"):
            ModelRegistry.from_directory(tmp_path)


class TestMetadata:
    def test_info_fields(self, checkpoint_dir):
        registry = ModelRegistry.from_directory(checkpoint_dir)
        info = registry.info("diffeq1")
        assert info.model_id == "diffeq1"
        assert info.image_size == 16
        assert info.input_channels == 4 and info.output_channels == 3
        assert info.num_parameters > 0
        assert info.path.endswith("diffeq1.npz")
        assert len(info.checksum) == 64
        assert info.size_bytes > 0
        assert info.as_dict()["model_id"] == "diffeq1"

    def test_checksum_tracks_file_content(self, checkpoint_dir):
        registry = ModelRegistry.from_directory(checkpoint_dir)
        checksums = {info.checksum for info in registry.list()}
        assert len(checksums) == 2   # different weights, different digests

    def test_in_memory_registration(self, tiny_model):
        registry = ModelRegistry()
        info = registry.register("live", tiny_model)
        assert info.path is None and info.checksum is None
        assert registry.get("live") is tiny_model

    def test_duplicate_id_rejected(self, tiny_model):
        registry = ModelRegistry()
        registry.register("m", tiny_model)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("m", tiny_model)

    def test_unknown_id_names_known_models(self, tiny_model):
        registry = ModelRegistry()
        registry.register("only", tiny_model)
        with pytest.raises(KeyError, match="only"):
            registry.get("missing")

    def test_id_of_finds_instance_by_identity(self, tiny_model, make_model):
        registry = ModelRegistry()
        registry.register("m", tiny_model)
        assert registry.id_of(tiny_model) == "m"
        assert registry.id_of(make_model(seed=8)) is None
