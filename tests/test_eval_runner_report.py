"""Eval runner, report, and CLI tests: determinism, splits, compare."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data import ShardedStore
from repro.eval import (
    CheckpointForecaster,
    SplitSpec,
    compare_reports,
    evaluate_store,
    evaluation_report,
    load_report,
    make_baseline,
    parse_split,
    render_report,
)
from repro.gan import Dataset
from repro.gan.baselines import MeanTargetBaseline, PlacementCopyBaseline
from repro.gan.dataset import from_unit_range
from tests.conftest import make_dataset, make_sample, make_tiny_model

SIZE = 16


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    dataset = Dataset(make_dataset(5, size=SIZE, design="a").samples
                      + make_dataset(3, size=SIZE, design="b",
                                     seed0=100).samples)
    root = tmp_path_factory.mktemp("eval") / "store"
    return ShardedStore.from_dataset(root, dataset, shard_size=3)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("eval-ckpt") / "tiny.npz"
    make_tiny_model(seed=3).save(path)
    return path


@pytest.fixture(scope="module")
def forecaster(checkpoint):
    return CheckpointForecaster.from_checkpoint(checkpoint)


class TestSplits:
    def test_parse_split_forms(self):
        assert parse_split("all") == SplitSpec()
        assert parse_split("design:ode") == SplitSpec("design", "ode")
        assert parse_split("holdout:ode") == SplitSpec("holdout", "ode")

    def test_parse_split_rejects_garbage(self):
        for bad in ("", "design:", "unknown:x", "holdout"):
            with pytest.raises(ValueError):
                parse_split(bad)

    def test_design_split_selects_one_design(self, store, forecaster):
        result = evaluate_store(store, forecaster,
                                split=parse_split("design:b"))
        assert result.num_samples == 3
        assert set(result.designs) == {"b"}

    def test_holdout_split_records_training_side(self, store, forecaster):
        split = parse_split("holdout:b")
        result = evaluate_store(store, forecaster, split=split)
        assert set(result.designs) == {"b"}
        report = evaluation_report(store, result, forecaster.identity,
                                   split)
        assert report["split"]["policy"] == "holdout"
        assert report["split"]["train_designs"] == ["a"]
        assert report["split"]["num_samples"] == 3

    def test_unknown_design_raises(self, store, forecaster):
        with pytest.raises(ValueError, match="not in store"):
            evaluate_store(store, forecaster,
                           split=parse_split("design:zzz"))

    def test_holdout_needs_two_designs(self, tmp_path, forecaster):
        single = ShardedStore.from_dataset(
            tmp_path / "single", make_dataset(2, size=SIZE), shard_size=2)
        with pytest.raises(ValueError, match="two designs"):
            evaluate_store(single, forecaster,
                           split=parse_split("holdout:d"))


class TestDeterminism:
    def test_repeated_runs_render_identical_reports(self, store,
                                                    forecaster):
        reports = []
        for _ in range(2):
            result = evaluate_store(store, forecaster, batch_size=4)
            reports.append(render_report(evaluation_report(
                store, result, forecaster.identity, batch_size=4)))
        assert reports[0] == reports[1]

    def test_worker_count_does_not_change_bytes(self, store, forecaster):
        """Acceptance: --workers 1 and --workers 4 are byte-identical."""
        serial = evaluate_store(store, forecaster, batch_size=4, workers=1)
        parallel = evaluate_store(store, forecaster, batch_size=4,
                                  workers=4)
        assert render_report(evaluation_report(
            store, serial, forecaster.identity, batch_size=4)) == \
            render_report(evaluation_report(
                store, parallel, forecaster.identity, batch_size=4))

    def test_workers_require_checkpoint(self, store):
        baseline, _ = make_baseline("placement-copy", store, SplitSpec())
        with pytest.raises(ValueError, match="on-disk checkpoint"):
            evaluate_store(store, baseline, workers=2)

    def test_per_design_breakdown_partitions_samples(self, store,
                                                     forecaster):
        result = evaluate_store(store, forecaster)
        breakdown = result.per_design()
        assert set(breakdown) == {"a", "b"}
        designs = np.asarray(result.designs)
        for name, values in result.per_sample.items():
            weighted = sum(
                breakdown[d][name] * (designs == d).sum()
                for d in breakdown)
            assert weighted / len(designs) == pytest.approx(
                float(values.mean()))


class TestBaselines:
    def test_placement_copy_is_perfect_when_target_is_placement(
            self, tmp_path):
        samples = []
        for seed in range(3):
            sample = make_sample("d", size=SIZE, seed=seed)
            sample.y = sample.x[:3].copy()
            samples.append(sample)
        store = ShardedStore.from_dataset(tmp_path / "copy",
                                          Dataset(samples), shard_size=2)
        baseline, _ = make_baseline("placement-copy", store, SplitSpec())
        result = evaluate_store(store, baseline)
        assert result.metrics()["rmse"] == pytest.approx(0.0, abs=1e-7)
        assert result.metrics()["accuracy"] == pytest.approx(1.0)

    def test_mean_target_fits_training_designs_only(self, store):
        split = parse_split("holdout:b")
        baseline, identity = make_baseline("mean-target", store, split)
        assert identity["fit_designs"] == ["a"]
        expected = np.mean(
            [s.y_image for s in store.iter_samples() if s.design == "a"],
            axis=0)
        np.testing.assert_allclose(baseline.mean_image, expected,
                                   atol=1e-6)

    def test_mean_target_forecast_tiles_batch(self, store):
        baseline, _ = make_baseline("mean-target", store, SplitSpec())
        x = np.zeros((4, 4, SIZE, SIZE), dtype=np.float32)
        images = baseline.forecast_images(x)
        assert images.shape == (4, SIZE, SIZE, 3)
        np.testing.assert_array_equal(images[0], images[3])

    def test_unknown_baseline_raises(self, store):
        with pytest.raises(ValueError, match="unknown baseline"):
            make_baseline("psychic", store, SplitSpec())

    def test_copy_baseline_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            PlacementCopyBaseline().forecast_images(np.zeros((4, SIZE)))
        with pytest.raises(ValueError):
            MeanTargetBaseline.fit([])


class TestCompareReports:
    def _report(self, store, forecaster):
        result = evaluate_store(store, forecaster)
        return evaluation_report(store, result, forecaster.identity)

    def test_identical_reports_compare_ok(self, store, forecaster):
        report = self._report(store, forecaster)
        comparison = compare_reports(report, json.loads(
            render_report(report)))
        assert comparison.ok
        assert "all metrics within tolerance" in comparison.format()

    def test_metric_drift_detected_with_readable_diff(self, store,
                                                      forecaster):
        report = self._report(store, forecaster)
        drifted = json.loads(render_report(report))
        drifted["metrics"]["nrms"] += 0.05
        comparison = compare_reports(report, drifted,
                                     tolerances={"nrms": 1e-6})
        assert not comparison.ok
        assert [d.name for d in comparison.drifted] == ["nrms"]
        text = comparison.format()
        assert "DRIFT" in text and "nrms" in text and "drift:" in text

    def test_within_tolerance_passes(self, store, forecaster):
        report = self._report(store, forecaster)
        nudged = json.loads(render_report(report))
        nudged["metrics"]["nrms"] += 1e-7
        assert compare_reports(report, nudged,
                               tolerances={"nrms": 1e-6}).ok

    def test_missing_metric_is_failure(self, store, forecaster):
        report = self._report(store, forecaster)
        stripped = json.loads(render_report(report))
        del stripped["metrics"]["ssim"]
        comparison = compare_reports(report, stripped)
        assert not comparison.ok
        assert any("missing" in d.format() for d in comparison.drifted)

    def test_different_data_is_failure_unless_allowed(self, store,
                                                      forecaster):
        report = self._report(store, forecaster)
        other = json.loads(render_report(report))
        other["dataset"]["fingerprint"] = "0" * 64
        assert not compare_reports(report, other).ok
        assert compare_reports(report, other,
                               require_same_data=False).ok

    def test_unknown_tolerance_is_failure(self, store, forecaster):
        report = self._report(store, forecaster)
        comparison = compare_reports(report, report,
                                     tolerances={"nope": 1.0})
        assert not comparison.ok

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="not an eval report"):
            load_report(path)


class TestCli:
    def test_run_writes_byte_identical_reports(self, store, checkpoint,
                                               tmp_path, capsys):
        args = ["eval", "run", "--store", str(store.root),
                "--checkpoint", str(checkpoint), "--batch-size", "4"]
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(args + ["--out", str(out_a)]) == 0
        assert main(args + ["--out", str(out_b), "--workers", "4"]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        assert "nrms" in capsys.readouterr().out

    def test_compare_ok_and_drift_exit_codes(self, store, checkpoint,
                                             tmp_path, capsys):
        out = tmp_path / "r.json"
        main(["eval", "run", "--store", str(store.root),
              "--checkpoint", str(checkpoint), "--out", str(out)])
        assert main(["eval", "compare", str(out), str(out)]) == 0
        drifted = tmp_path / "drifted.json"
        report = json.loads(out.read_text())
        report["metrics"]["nrms"] += 1.0
        drifted.write_text(json.dumps(report))
        with pytest.raises(SystemExit):
            main(["eval", "compare", str(out), str(drifted)])
        assert "DRIFT" in capsys.readouterr().out

    def test_compare_tolerance_flag(self, store, checkpoint, tmp_path):
        out = tmp_path / "r.json"
        main(["eval", "run", "--store", str(store.root),
              "--checkpoint", str(checkpoint), "--out", str(out)])
        drifted = tmp_path / "drifted.json"
        report = json.loads(out.read_text())
        report["metrics"]["nrms"] += 0.5
        drifted.write_text(json.dumps(report))
        assert main(["eval", "compare", str(out), str(drifted),
                     "--tolerance", "nrms=1.0"]) == 0

    def test_baselines_command(self, store, tmp_path, capsys):
        assert main(["eval", "baselines", "--store", str(store.root),
                     "--out-dir", str(tmp_path / "base")]) == 0
        out = capsys.readouterr().out
        assert "placement-copy" in out and "mean-target" in out
        assert (tmp_path / "base" / "mean-target.json").exists()

    def test_run_requires_exactly_one_model_source(self, store):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["eval", "run", "--store", str(store.root)])

    def test_run_via_registry_directory(self, store, checkpoint, capsys):
        assert main(["eval", "run", "--store", str(store.root),
                     "--checkpoints", str(checkpoint.parent),
                     "--model", checkpoint.stem]) == 0
        assert checkpoint.stem in capsys.readouterr().out

    def test_unknown_registry_model_exits_cleanly(self, store,
                                                  checkpoint):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["eval", "run", "--store", str(store.root),
                  "--checkpoints", str(checkpoint.parent),
                  "--model", "nosuch"])

    def test_missing_store_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["eval", "run", "--store", str(tmp_path / "nope"),
                  "--baseline", "placement-copy"])
