"""Cross-process telemetry: publish, discover, and exact merge."""

import json
import random
import threading

import pytest

from repro.obs.aggregate import (
    aggregate_dir,
    aggregate_snapshots,
    merge_exports,
    registry_from_export,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import (
    TelemetryPublisher,
    discover_snapshots,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)


def instrument(registry: MetricsRegistry):
    """One of each metric kind, including labels and every gauge policy."""
    return {
        "requests": registry.counter("req_total", "requests"),
        "routes": registry.counter("http_total", "by route",
                                   labelnames=("route",)),
        "depth": registry.gauge("depth", "queue depth", agg="sum"),
        "peak": registry.gauge("peak_bytes", "peak memory", agg="max"),
        "version": registry.gauge("config_version", "config", agg="last"),
        "latency": registry.histogram("lat", "latency",
                                      buckets=(1.0, 5.0, 10.0)),
    }


def drive(metrics, samples):
    """Replay integer-valued observations (exact float partial sums)."""
    for route, value in samples:
        metrics["requests"].inc()
        metrics["routes"].labels(route=route).inc()
        metrics["latency"].observe(float(value))


def fleet_and_serial(num_workers: int, seed: int = 7):
    """The same 200 observations served by N workers and by one registry."""
    rng = random.Random(seed)
    samples = [(f"/r{rng.randrange(3)}", rng.randrange(15))
               for _ in range(200)]
    assignment = [rng.randrange(num_workers) for _ in samples]

    serial = MetricsRegistry()
    serial_metrics = instrument(serial)
    drive(serial_metrics, samples)

    workers = []
    for index in range(num_workers):
        registry = MetricsRegistry()
        metrics = instrument(registry)
        drive(metrics, [sample for sample, owner
                        in zip(samples, assignment) if owner == index])
        workers.append((f"w{index}", registry, metrics))

    # Gauges: declared policies determine the merged value.
    for index, (_, _, metrics) in enumerate(workers):
        metrics["depth"].set(float(index + 1))      # sum -> N(N+1)/2
        metrics["peak"].set(float(100 * (index + 1)))  # max -> 100N
        metrics["version"].set(7.0)                  # last -> 7
    n = num_workers
    serial_metrics["depth"].set(n * (n + 1) / 2.0)
    serial_metrics["peak"].set(100.0 * n)
    serial_metrics["version"].set(7.0)
    return workers, serial, samples


def snapshot_doc(role, worker, registry):
    return {"role": role, "worker": worker, "families": registry.export()}


class TestMergeExactness:
    def test_four_worker_merge_equals_serial_registry(self):
        workers, serial, _ = fleet_and_serial(4)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        merged = fleet.registry()
        assert json.dumps(merged.snapshot(), sort_keys=True) == \
            json.dumps(serial.snapshot(), sort_keys=True)

    def test_merge_is_worker_count_invariant(self):
        # 1 worker and 4 workers over the same observations merge to the
        # identical document.
        _, serial, _ = fleet_and_serial(4)
        one = aggregate_snapshots([snapshot_doc("x", "solo", serial)])
        workers, _, _ = fleet_and_serial(4)
        four = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        assert json.dumps(one.merged, sort_keys=True) == \
            json.dumps(four.merged, sort_keys=True)

    def test_merge_is_order_invariant(self):
        workers, _, _ = fleet_and_serial(4)
        docs = [snapshot_doc("sweep", name, registry)
                for name, registry, _ in workers]
        shuffled = list(docs)
        random.Random(3).shuffle(shuffled)
        assert json.dumps(aggregate_snapshots(docs).merged,
                          sort_keys=True) == \
            json.dumps(aggregate_snapshots(shuffled).merged, sort_keys=True)

    def test_merged_prometheus_identical_to_serial(self):
        workers, serial, _ = fleet_and_serial(3, seed=11)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        assert fleet.render_prometheus() == serial.render_prometheus()

    def test_merged_prometheus_reparses(self):
        workers, _, _ = fleet_and_serial(4, seed=5)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        text = fleet.render_prometheus()
        # Every sample line is `name{labels} value` with a float-parseable
        # value; HELP/TYPE headers precede each family.
        names = set()
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                names.add(line.split()[2])
                continue
            metric, value = line.rsplit(" ", 1)
            float(value)    # must parse
            base = metric.split("{")[0]
            family = base
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix):
                    family = family[: -len(suffix)]
            assert family in names or base in names

    def test_histogram_quantiles_exact_after_merge(self):
        workers, serial, _ = fleet_and_serial(4, seed=13)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        merged_latency = fleet.registry().snapshot()["lat"]
        serial_latency = serial.snapshot()["lat"]
        assert merged_latency["p50"] == serial_latency["p50"]
        assert merged_latency["p99"] == serial_latency["p99"]
        assert merged_latency["min"] == serial_latency["min"]
        assert merged_latency["max"] == serial_latency["max"]

    def test_gauge_policies(self):
        workers, _, _ = fleet_and_serial(4)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        snapshot = fleet.registry().snapshot()
        assert snapshot["depth"] == 10      # 1+2+3+4
        assert snapshot["peak_bytes"] == 400
        assert snapshot["config_version"] == 7

    def test_mismatched_kinds_rejected(self):
        a = MetricsRegistry()
        a.counter("m").inc()
        b = MetricsRegistry()
        b.gauge("m").set(1.0)
        with pytest.raises(ValueError, match="counter"):
            merge_exports([("a", a.export()), ("b", b.export())])

    def test_mismatched_histogram_bounds_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError, match="bounds"):
            merge_exports([("a", a.export()), ("b", b.export())])


class TestWorkerDrilldown:
    def test_worker_label_retained(self):
        workers, _, _ = fleet_and_serial(2)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        text = fleet.render_prometheus(per_worker=True)
        assert 'worker="sweep-w0"' in text
        assert 'worker="sweep-w1"' in text
        # Pre-existing labels compose with the worker label.
        assert 'route="/r0",worker="sweep-w0"' in text

    def test_drilldown_sums_back_to_merged_counter(self):
        workers, serial, _ = fleet_and_serial(3)
        fleet = aggregate_snapshots(
            [snapshot_doc("sweep", name, registry)
             for name, registry, _ in workers])
        per_worker = fleet.worker_registry().snapshot()["req_total"]
        assert sum(per_worker.values()) == serial.snapshot()["req_total"]


class TestRoundTrip:
    def test_registry_from_export_round_trips(self):
        _, serial, _ = fleet_and_serial(2)
        rebuilt = registry_from_export(serial.export())
        assert json.dumps(rebuilt.snapshot(), sort_keys=True) == \
            json.dumps(serial.snapshot(), sort_keys=True)
        assert rebuilt.render_prometheus() == serial.render_prometheus()

    def test_empty_labeled_family_survives(self):
        registry = MetricsRegistry()
        registry.counter("errs_total", "errors", labelnames=("kind",))
        rebuilt = registry_from_export(registry.export())
        assert "errs_total" in rebuilt.render_prometheus()


class TestPublish:
    def test_write_and_read_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        path = write_snapshot(registry, tmp_path, "serve", "a", seq=5)
        assert path == snapshot_path(tmp_path, "serve", "a")
        doc = read_snapshot(path)
        assert doc["role"] == "serve"
        assert doc["worker"] == "a"
        assert doc["seq"] == 5
        assert registry_from_export(doc["families"]).snapshot()["n"] == 3

    def test_discover_skips_garbage_and_sorts(self, tmp_path):
        for worker in ("b", "a"):
            registry = MetricsRegistry()
            registry.counter("n").inc()
            write_snapshot(registry, tmp_path, "sweep", worker)
        (tmp_path / "torn.json").write_text('{"version": 1, "fam')
        (tmp_path / "unrelated.json").write_text('{"not": "telemetry"}')
        docs = discover_snapshots(tmp_path)
        assert [doc["worker"] for doc in docs] == ["a", "b"]

    def test_aggregate_dir_accepts_parent(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        write_snapshot(registry, tmp_path / "telemetry", "sweep", "w")
        for root in (tmp_path, tmp_path / "telemetry"):
            fleet = aggregate_dir(root)
            assert fleet.registry().snapshot()["n"] == 2

    def test_aggregate_empty_dir(self, tmp_path):
        fleet = aggregate_dir(tmp_path)
        assert fleet.workers == []
        assert fleet.merged == {}
        assert fleet.render_prometheus().strip() == ""

    def test_publisher_lifecycle(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        published = []
        publisher = TelemetryPublisher(
            registry, tmp_path, "serve", worker="x", interval=60.0,
            on_publish=lambda doc: published.append(doc["seq"]))
        with publisher:
            counter.inc(4)
        # One immediate publish at start, one final exact one at stop.
        assert publisher.seq == 2
        assert published == [1, 2]
        final = read_snapshot(publisher.path)
        assert registry_from_export(final["families"]).snapshot()["n"] == 4
        publisher.unpublish()
        assert not publisher.path.exists()

    def test_publisher_thread_republishes(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        seen = threading.Event()
        publisher = TelemetryPublisher(
            registry, tmp_path, "serve", worker="x", interval=0.02,
            on_publish=lambda doc: seen.set() if doc["seq"] >= 3 else None)
        with publisher:
            assert seen.wait(timeout=5.0)

    def test_concurrent_publish_with_observe(self, tmp_path):
        # Snapshots taken while another thread observes are always
        # internally consistent (atomic file, consistent registry walk).
        registry = MetricsRegistry()
        metrics = instrument(registry)
        stop = threading.Event()

        def pound():
            route = 0
            while not stop.is_set():
                drive(metrics, [(f"/r{route % 3}", route % 15)])
                route += 1

        thread = threading.Thread(target=pound)
        thread.start()
        try:
            last = 0
            for seq in range(20):
                write_snapshot(registry, tmp_path, "serve", "x", seq=seq)
                doc = read_snapshot(snapshot_path(tmp_path, "serve", "x"))
                rebuilt = registry_from_export(doc["families"])
                snapshot = rebuilt.snapshot()
                # The counter is bumped before the histogram observes,
                # so a torn-in-time (but never torn-on-disk) snapshot
                # keeps count <= requests; totals only grow.
                assert snapshot["lat"]["count"] <= snapshot["req_total"]
                assert snapshot["req_total"] >= last
                last = snapshot["req_total"]
        finally:
            stop.set()
            thread.join()
