"""E7/E8 — Section 5.3: L1 and skip-connection ablations.

Figure 7: inference images of the three variants (L1+all-skips, w/o L1,
single skip) against the ground truth on an OR1200-style design.
Figure 8: the generator/discriminator loss curves of the same runs, plus the
"training noise" statistic the paper describes qualitatively (loss curves
are "aggressively optimized with relative large noises" without L1/skips).
"""

import pytest
from conftest import RESULTS_DIR, write_result
from reporting import benchmark_entry, entry, write_bench_json

from repro.flows import run_ablation
from repro.viz import write_png


@pytest.fixture(scope="module")
def ablation_results(scale, or1200_bundle, single_design_epochs):
    return run_ablation(scale, or1200_bundle, epochs=single_design_epochs,
                        seed=0)


def test_fig7_inference_images(benchmark, scale, or1200_bundle,
                               ablation_results, single_design_epochs):
    """Figure 7: the full model's forecast should be closest to truth."""
    sample = or1200_bundle.dataset[len(or1200_bundle.dataset) - 1]

    def forecast_once():
        # Benchmark the pure inference of the full model variant.
        from repro.gan.metrics import per_pixel_accuracy

        result = ablation_results["L1+skip"]
        return per_pixel_accuracy(result.forecast01, result.truth01)

    benchmark(forecast_once)

    out_dir = RESULTS_DIR / "fig7"
    write_png(out_dir / "truth.png",
              ablation_results["L1+skip"].truth01)
    lines = [f"Figure 7 inference images (design OR1200, "
             f"scale={scale.name}, epochs={single_design_epochs})"]
    for name, result in ablation_results.items():
        safe = name.replace("/", "").replace(" ", "_")
        write_png(out_dir / f"{safe}.png", result.forecast01)
        lines.append(f"  {name:<12} per-pixel accuracy vs truth: "
                     f"{result.accuracy:.1%}")
    full = ablation_results["L1+skip"].accuracy
    no_l1 = ablation_results["w/o L1"].accuracy
    single = ablation_results["single skip"].accuracy
    lines.append(f"  ordering (paper: L1+skip best): "
                 f"full={full:.1%} >= max(w/o L1={no_l1:.1%}, "
                 f"single={single:.1%}) - tol")
    write_result("fig7_ablation_images", lines)
    write_bench_json("fig7_ablation_images", [
        benchmark_entry("ablation_accuracy_eval", benchmark),
    ] + [entry(f"accuracy_{name.replace('/', '').replace(' ', '_')}",
               accuracy=result.accuracy)
         for name, result in ablation_results.items()], scale.name)

    # The paper's qualitative claim: the full model produces the best map.
    assert full >= max(no_l1, single) - 0.05


def test_fig8_loss_curves(benchmark, scale, ablation_results,
                          single_design_epochs):
    """Figure 8: loss trajectories per variant."""

    def summarize():
        return {name: result.history.g_total[-1]
                for name, result in ablation_results.items()}

    benchmark(summarize)

    lines = [f"Figure 8 training-loss curves (scale={scale.name}, "
             f"epochs={single_design_epochs})"]
    for name, result in ablation_results.items():
        g = " ".join(f"{v:7.3f}" for v in result.history.g_total)
        d = " ".join(f"{v:7.3f}" for v in result.history.d_total)
        lines.append(f"  {name}")
        lines.append(f"    G: {g}")
        lines.append(f"    D: {d}")
        lines.append(f"    G-curve noise (mean |second diff|): "
                     f"{result.loss_noise:.4f}")
    write_result("fig8_loss_curves", lines)
    write_bench_json("fig8_loss_curves", [
        entry(f"loss_noise_{name.replace('/', '').replace(' ', '_')}",
              g_final=result.history.g_total[-1],
              loss_noise=result.loss_noise)
        for name, result in ablation_results.items()], scale.name)

    for result in ablation_results.values():
        assert result.history.epochs == single_design_epochs
        assert all(v >= 0 for v in result.history.d_total)
    # w/o L1 removes the (dominant) reconstruction term, so its G loss sits
    # far below the L1-bearing variants — same axis relationship as Fig 8a.
    assert (ablation_results["w/o L1"].history.g_total[-1]
            < ablation_results["L1+skip"].history.g_total[-1])
