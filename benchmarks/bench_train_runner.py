"""Run-orchestration overhead: the runner versus the bare step loop.

Three measurements at the session scale:

* **runner overhead** — steps/sec through ``Runner.run()`` (loss JSONL,
  cursor bookkeeping, status writes) versus the bare ``train_step``
  loop over the same batches, net of the one run-end checkpoint.  The
  orchestration layer must cost less than 15% of step throughput even
  at smoke scale — training time belongs to the model.
* **checkpoint round-trip** — seconds to write and to restore one full
  exact-resume train state (weights + Adam moments + rng streams).
* **resume replay** — seconds for ``Runner.resume().run()`` to skip to
  a mid-run cursor and finish, versus finishing from a live runner.
"""

import shutil
import time
from pathlib import Path

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json
from workloads import measure_train_step

from repro.gan import Dataset, Pix2Pix, Pix2PixConfig
from repro.train import Runner, TrainSpec
from repro.train.checkpoint import TrainCursor, load_train_state, save_train_state
from tests.conftest import make_sample

EPOCHS = 3
SAMPLES = 16


def _dataset(size: int) -> Dataset:
    return Dataset([make_sample("bench", size=size, seed=index)
                    for index in range(SAMPLES)])


def _spec(name: str, scale, epochs: int = EPOCHS) -> TrainSpec:
    # Checkpoint cadence off the epoch grid and publishing disabled: the
    # overhead measurement isolates the *per-step* orchestration tax
    # (JSONL, cursor, status); checkpoint cost is measured on its own.
    return TrainSpec(
        name=name, data="inline", scale=scale.name, seed=1, epochs=epochs,
        order="stream", checkpoint_every_steps=0,
        checkpoint_every_epochs=epochs + 1, publish=False,
        model={"base_filters": scale.base_filters,
               "disc_filters": scale.disc_filters})


def test_train_runner_overhead(tmp_path, scale):
    size = scale.image_size
    dataset = _dataset(size)
    steps = EPOCHS * SAMPLES

    # Bare loop: the same number of identical-shape steps, no runner.
    model = Pix2Pix(Pix2PixConfig.from_scale(scale, image_size=size,
                                             seed=1))
    x = dataset[0].x[None]
    y = dataset[0].y[None]
    model.train_step(x, y)   # warm the workspace arena
    start = time.perf_counter()
    for _ in range(steps):
        model.train_step(x, y)
    bare_seconds = time.perf_counter() - start

    # Orchestrated: full run directory, loss JSONL, status, checkpoints
    # at epoch ends.
    run_root = tmp_path / "runs"
    runner = Runner.create(_spec("bench", scale), run_root,
                           dataset=dataset)
    runner.model.train_step(x, y)   # warm this model's arena too
    start = time.perf_counter()
    runner.run()
    orchestrated_seconds = time.perf_counter() - start

    # Checkpoint round-trip cost.
    ckpt = tmp_path / "state.npz"
    start = time.perf_counter()
    save_train_state(ckpt, runner.model, TrainCursor(), np.zeros(4))
    save_seconds = time.perf_counter() - start
    fresh = Pix2Pix(Pix2PixConfig.from_scale(scale, image_size=size,
                                             seed=1))
    start = time.perf_counter()
    load_train_state(ckpt, fresh)
    load_seconds = time.perf_counter() - start

    # The timed run writes exactly one checkpoint (the run-end state);
    # subtract its separately-measured cost to isolate per-step tax.
    overhead = ((orchestrated_seconds - save_seconds) / bare_seconds) - 1.0

    # Resume replay: interrupt mid-run, then time the resumed tail
    # against the uninterrupted runner's same tail.
    shutil.rmtree(run_root)
    stop_at = steps // 2 + 1   # mid-epoch, off the epoch-end grid
    Runner.create(_spec("resumed", scale), run_root,
                  dataset=dataset).run(stop_after_steps=stop_at)
    start = time.perf_counter()
    result = Runner.resume(run_root / "resumed", dataset=dataset).run()
    resume_seconds = time.perf_counter() - start
    assert result.completed

    write_result("train_runner", [
        f"Run-orchestration overhead ({steps} steps, {size}px, "
        f"scale {scale.name})",
        f"  bare step loop        {bare_seconds:8.3f}s "
        f"({steps / bare_seconds:6.1f} steps/s)",
        f"  orchestrated run      {orchestrated_seconds:8.3f}s "
        f"({steps / orchestrated_seconds:6.1f} steps/s, "
        f"per-step overhead {overhead:+.1%} net of 1 checkpoint)",
        f"  checkpoint save/load  {save_seconds * 1e3:8.2f}ms / "
        f"{load_seconds * 1e3:8.2f}ms",
        f"  resume tail ({steps - stop_at} steps)"
        f"   {resume_seconds:8.3f}s (restore + replay skip included)",
    ])

    canonical = measure_train_step(scale)
    write_bench_json("train_runner", [
        entry(**canonical),
        entry("runner_steps", shape=[1, 4, size, size],
              wall_time_s=orchestrated_seconds / steps,
              throughput=steps / orchestrated_seconds,
              overhead_vs_bare=round(overhead, 4)),
        entry("bare_steps", shape=[1, 4, size, size],
              wall_time_s=bare_seconds / steps,
              throughput=steps / bare_seconds),
        entry("train_state_save", wall_time_s=save_seconds),
        entry("train_state_load", wall_time_s=load_seconds),
        entry("resume_tail", wall_time_s=resume_seconds),
    ], scale.name)

    # Acceptance: orchestration must not tax the step loop noticeably.
    # (15% covers smoke-scale steps of a few ms, where per-line flushes
    # are visible; the pre-fix per-step file reopen cost +235%.)
    assert overhead < 0.15, (
        f"runner orchestration costs {overhead:.1%} over the bare loop "
        f"(budget: 15%)")
