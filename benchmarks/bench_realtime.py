"""E10 — Section 5.4: real-time forecasting while the design is placed.

Benchmarks the per-frame forecast latency when hooked into the annealer and
checks the demo's qualitative behaviour: predicted congestion falls as the
annealer improves the placement.
"""

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json

from repro.flows import live_forecast
from repro.fpga import PlacerOptions


def test_realtime_forecast(benchmark, scale, ode_bundle, ode_trainer):
    holder = {}

    def run():
        holder["frames"] = live_forecast(
            ode_bundle, ode_trainer.model,
            options=PlacerOptions(seed=77, alpha_t=0.9),
            snapshot_every=2,
            connect_weight=scale.connect_weight)
        return holder["frames"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    frames = holder["frames"]

    latencies = [frame.forecast_seconds for frame in frames]
    early = float(np.mean([f.predicted_congestion for f in frames[:3]]))
    late = float(np.mean([f.predicted_congestion for f in frames[-3:]]))
    lines = [
        f"Section 5.4 real-time forecast (design ode, scale={scale.name})",
        f"  frames: {len(frames)}  "
        f"mean forecast latency: {np.mean(latencies) * 1e3:.1f} ms  "
        f"({1.0 / max(np.mean(latencies), 1e-9):.0f} fps)",
        f"  predicted congestion early(first 3): {early:.4f}  "
        f"late(last 3): {late:.4f}",
        f"  annealer cooled over {len(frames)} snapshots: "
        f"{frames[0].temperature:.3f} -> {frames[-1].temperature:.5f}",
    ]
    write_result("realtime", lines)
    mean_latency = float(np.mean(latencies))
    write_bench_json("realtime", [
        entry("live_forecast_frame", wall_time_s=mean_latency,
              throughput=1.0 / max(mean_latency, 1e-9),
              frames=len(frames)),
    ], scale.name)

    assert len(frames) >= 5
    # Forecast must keep up with the annealer (sub-second per frame).
    assert max(latencies) < 1.0
    # The demo's point: congestion forecasts improve as placement converges.
    assert late <= early + 0.02
