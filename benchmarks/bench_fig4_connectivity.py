"""E3 — Figure 4: connectivity images of two different placements.

Benchmarks the img_connect rasterization and checks the figure's point:
the same netlist under different placements yields visibly different
connectivity images (while an identical placement reproduces the same one).
"""

import numpy as np
from conftest import write_result
from reporting import benchmark_entry, write_bench_json

from repro.fpga import Placement
from repro.viz import render_connectivity


def test_fig4_connectivity(benchmark, scale, suite_bundles):
    bundle = suite_bundles["diffeq2"]
    placement_a = bundle.placements[0]
    placement_b = bundle.placements[1]

    image_a = benchmark(render_connectivity, bundle.netlist, placement_a,
                        bundle.layout)
    image_b = render_connectivity(bundle.netlist, placement_b, bundle.layout)
    image_a_again = render_connectivity(bundle.netlist, placement_a,
                                        bundle.layout)

    overlap = float(
        (np.minimum(image_a, image_b).sum())
        / max(np.maximum(image_a, image_b).sum(), 1e-9))
    lines = [
        f"Figure 4 connectivity images (design diffeq2, scale={scale.name})",
        f"  image size {bundle.layout.image_size}px, "
        f"{bundle.netlist.num_nets} nets drawn",
        f"  placement A vs B pixel overlap (min/max ratio): {overlap:.2f}",
        f"  deterministic re-render identical: "
        f"{bool(np.array_equal(image_a, image_a_again))}",
    ]
    write_result("fig4_connectivity", lines)
    write_bench_json("fig4_connectivity", [
        benchmark_entry("render_connectivity", benchmark,
                        shape=image_a.shape),
    ], scale.name)

    assert np.array_equal(image_a, image_a_again)
    assert not np.allclose(image_a, image_b)
    assert 0.0 <= overlap < 1.0
