"""Perf-regression gate: compare a bench JSON against the pinned baseline.

CI's perf-smoke job runs the core benches (which write
``results/BENCH_*.json``) and then:

    python benchmarks/check_regression.py --scale smoke --max-ratio 1.5

fails if any gated op's calibration-normalized wall time regressed more
than ``--max-ratio`` versus ``baselines/<scale>.json``.  The committed
baselines hold the pre-PR-4 hot-path numbers, so this gate both blocks
future regressions and documents the speedups this PR landed (a current
wall time *above* the pre-PR baseline divided by 1.5 means the
optimization work has been more than undone).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_DIR = Path(__file__).parent / "baselines"

#: op -> BENCH file that records it.  These are the gated hot paths.
GATED_OPS = {
    "train_step": "speedup",
    "forecast_single": "speedup",
    "serve_throughput_b16": "serve",
    "eval_batch16": "eval",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when normalized wall time exceeds "
                             "baseline * ratio (default 1.5)")
    args = parser.parse_args()

    baseline_path = BASELINE_DIR / f"{args.scale}.json"
    if not baseline_path.is_file():
        print(f"ERROR: no committed baseline at {baseline_path}")
        return 2
    baseline = json.loads(baseline_path.read_text())
    base_calib = baseline.get("calibration_s") or 1.0

    failures = []
    for op, bench in GATED_OPS.items():
        bench_path = RESULTS_DIR / f"BENCH_{bench}.json"
        if not bench_path.is_file():
            failures.append(f"{op}: missing {bench_path.name} "
                            f"(did bench_{bench}.py run?)")
            continue
        document = json.loads(bench_path.read_text())
        if document.get("scale") != args.scale:
            failures.append(f"{op}: {bench_path.name} is scale "
                            f"{document.get('scale')!r}, expected "
                            f"{args.scale!r}")
            continue
        row = next((e for e in document["entries"] if e["op"] == op), None)
        base = baseline.get("ops", {}).get(op)
        if row is None or not row.get("wall_time_s") or not base:
            failures.append(f"{op}: not measured (bench or baseline row "
                            f"missing)")
            continue
        calib = document.get("calibration_s") or base_calib
        normalized = row["wall_time_s"] / calib
        allowed = base["wall_time_s"] / base_calib * args.max_ratio
        speedup = (base["wall_time_s"] / base_calib) / normalized
        status = "OK " if normalized <= allowed else "FAIL"
        print(f"{status} {op:22s} wall {row['wall_time_s'] * 1e3:8.3f} ms  "
              f"{speedup:5.2f}x vs pre-PR baseline "
              f"(gate: >= {1.0 / args.max_ratio:.2f}x)")
        if normalized > allowed:
            failures.append(
                f"{op}: {row['wall_time_s'] * 1e3:.3f} ms normalized is "
                f"worse than baseline x {args.max_ratio}")
    if failures:
        print("\nperf-smoke regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf-smoke regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
