"""Observability overhead: the <3% no-perturbation budget, measured.

Runs one tiny training workload three ways — instrumentation fully off,
fully on (telemetry events + span tracing into the run directory), and
fully on *plus* fleet publishing (a metrics registry counting steps and
a background publisher snapshotting it to disk every second) —
alternating repetitions and keeping the best wall time of each, and
gates both the instrumented/uninstrumented and published/instrumented
ratios at 3%.  The artifact-level guarantee (byte-identical checkpoints
and logs) is pinned by ``tests/test_obs_integration.py``; this bench
pins the *time* side of the contract and micro-benches the hot paths
that make it cheap: the disabled no-op span, a histogram observation,
an atomic snapshot publish, and a 4-worker exact merge.
"""

import time

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json

from repro.gan import Dataset, Sample
from repro.obs import (
    Histogram,
    MetricsRegistry,
    TELEMETRY_DIR,
    TelemetryPublisher,
    Tracer,
    aggregate_snapshots,
    write_snapshot,
)
from repro.train import EvalSpec, Runner, TrainSpec

#: Instrumented wall time may exceed uninstrumented by at most this.
MAX_OVERHEAD = 0.03
#: Alternating repetitions per variant (best-of).
REPEATS = 3
EPOCHS = 4
SAMPLES = 8
SIZE = 16


def _dataset() -> Dataset:
    rng = np.random.default_rng(11)
    samples = [
        Sample(design="bench",
               x=rng.normal(size=(4, SIZE, SIZE)).astype(np.float32),
               y=np.tanh(rng.normal(size=(3, SIZE, SIZE))
                         ).astype(np.float32),
               true_congestion=0.5)
        for _ in range(SAMPLES)
    ]
    return Dataset(samples)


def _timed_run(root, name: str, dataset: Dataset, instrumented: bool,
               publish: bool = False) -> tuple[float, int]:
    spec = TrainSpec(name=name, data="inline", scale="smoke", seed=5,
                     epochs=EPOCHS, order="shuffle",
                     model={"base_filters": 4, "disc_filters": 4},
                     eval=EvalSpec(every_epochs=1))
    metrics = MetricsRegistry() if publish else None
    runner = Runner.create(spec, root, dataset=dataset,
                           telemetry=instrumented, trace=instrumented,
                           metrics=metrics)
    publisher = None
    if publish:
        publisher = TelemetryPublisher(
            metrics, root / TELEMETRY_DIR, role="sweep", worker=name,
            interval=1.0)
        publisher.start()
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    if publisher is not None:
        publisher.stop()
    assert result.completed
    return elapsed, result.global_step


def _fleet_exports(workers: int = 4):
    """Realistically-sized worker exports: labels + a busy histogram."""
    docs = []
    for index in range(workers):
        registry = MetricsRegistry()
        requests = registry.counter("serve_requests_total")
        routes = registry.counter("http_requests_total",
                                  labelnames=("route",))
        latency = registry.histogram(
            "serve_request_latency_seconds",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0))
        for sample in range(500):
            requests.inc()
            routes.labels(route=f"/r{sample % 4}").inc()
            latency.observe(0.001 * (sample % 90))
        registry.gauge("serve_queue_depth", agg="sum").set(float(index))
        docs.append({"role": "sweep", "worker": f"w{index}",
                     "families": registry.export()})
    return docs


def _publish_ns(tmp_path, calls: int = 200) -> float:
    registry = MetricsRegistry()
    registry.counter("n").inc(3)
    registry.histogram("h", buckets=(1.0, 5.0)).observe(2.0)
    start = time.perf_counter_ns()
    for _ in range(calls):
        write_snapshot(registry, tmp_path, "serve", "bench")
    return (time.perf_counter_ns() - start) / calls


def _aggregate_ns(calls: int = 50) -> float:
    docs = _fleet_exports(4)
    start = time.perf_counter_ns()
    for _ in range(calls):
        aggregate_snapshots(docs)
    return (time.perf_counter_ns() - start) / calls


def _disabled_span_ns(calls: int = 200_000) -> float:
    tracer = Tracer(None)
    span = tracer.span  # the exact hot-path attribute lookup pattern
    start = time.perf_counter_ns()
    for _ in range(calls):
        with span("noop"):
            pass
    return (time.perf_counter_ns() - start) / calls


def _observe_ns(calls: int = 200_000) -> float:
    histogram = Histogram()
    observe = histogram.observe
    start = time.perf_counter_ns()
    for index in range(calls):
        observe(0.001 * (index % 7))
    return (time.perf_counter_ns() - start) / calls


def test_obs_overhead(tmp_path, scale):
    dataset = _dataset()
    walls = {"off": [], "on": [], "fleet": []}
    steps = 0
    for repeat in range(REPEATS):
        for tag in ("off", "on", "fleet"):
            elapsed, steps = _timed_run(
                tmp_path / f"{tag}-{repeat}", f"bench-{tag}",
                dataset, instrumented=tag != "off",
                publish=tag == "fleet")
            walls[tag].append(elapsed)
    best_off = min(walls["off"])
    best_on = min(walls["on"])
    best_fleet = min(walls["fleet"])
    overhead = best_on / best_off - 1.0
    publish_overhead = best_fleet / best_on - 1.0

    span_ns = _disabled_span_ns()
    observe_ns = _observe_ns()
    publish_ns = _publish_ns(tmp_path / "publish")
    aggregate_ns = _aggregate_ns()

    lines = [
        f"Observability overhead (scale={scale.name}, {SAMPLES} samples "
        f"x {EPOCHS} epochs = {steps} steps, best of {REPEATS})",
        f"  uninstrumented run: {best_off:8.3f} s "
        f"({steps / best_off:6.1f} steps/s)",
        f"  instrumented run:   {best_on:8.3f} s  "
        f"(telemetry + tracing, overhead {overhead:+.2%})",
        f"  + fleet publishing: {best_fleet:8.3f} s  "
        f"(registry + snapshots, overhead {publish_overhead:+.2%})",
        f"  disabled span():    {span_ns:8.0f} ns/call (no-op singleton)",
        f"  histogram observe:  {observe_ns:8.0f} ns/call",
        f"  snapshot publish:   {publish_ns:8.0f} ns/call (atomic write)",
        f"  4-worker merge:     {aggregate_ns:8.0f} ns/call (exact)",
    ]
    write_result("obs", lines)

    entries = [
        entry("obs_train_uninstrumented", shape=[SAMPLES, 4, SIZE, SIZE],
              wall_time_s=best_off, throughput=steps / best_off),
        entry("obs_train_instrumented", shape=[SAMPLES, 4, SIZE, SIZE],
              wall_time_s=best_on, throughput=steps / best_on,
              overhead_fraction=round(overhead, 4)),
        entry("obs_train_fleet_published", shape=[SAMPLES, 4, SIZE, SIZE],
              wall_time_s=best_fleet, throughput=steps / best_fleet,
              overhead_fraction=round(publish_overhead, 4)),
        entry("obs_disabled_span", wall_time_s=span_ns / 1e9,
              throughput=1e9 / span_ns),
        entry("obs_histogram_observe", wall_time_s=observe_ns / 1e9,
              throughput=1e9 / observe_ns),
        entry("obs_snapshot_publish", wall_time_s=publish_ns / 1e9,
              throughput=1e9 / publish_ns),
        entry("obs_aggregate_4workers", wall_time_s=aggregate_ns / 1e9,
              throughput=1e9 / aggregate_ns),
    ]
    write_bench_json("obs", entries, scale.name)

    # The budget: full instrumentation must stay within MAX_OVERHEAD of
    # the uninstrumented wall time on the best-of-N comparison, and
    # fleet publishing within MAX_OVERHEAD of plain instrumentation.
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget ({best_on:.3f}s vs {best_off:.3f}s)")
    assert publish_overhead < MAX_OVERHEAD, (
        f"fleet publish overhead {publish_overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget ({best_fleet:.3f}s vs {best_on:.3f}s)")
