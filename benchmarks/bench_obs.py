"""Observability overhead: the <3% no-perturbation budget, measured.

Runs one tiny training workload twice — instrumentation fully off, then
fully on (telemetry events + span tracing into the run directory) —
alternating repetitions and keeping the best wall time of each, and
gates the instrumented/uninstrumented ratio at 3%.  The artifact-level
guarantee (byte-identical checkpoints and logs) is pinned by
``tests/test_obs_integration.py``; this bench pins the *time* side of
the contract and micro-benches the disabled fast paths that make it
cheap: the shared no-op span and a histogram observation.
"""

import time

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json

from repro.gan import Dataset, Sample
from repro.obs import Histogram, Tracer
from repro.train import EvalSpec, Runner, TrainSpec

#: Instrumented wall time may exceed uninstrumented by at most this.
MAX_OVERHEAD = 0.03
#: Alternating repetitions per variant (best-of).
REPEATS = 3
EPOCHS = 4
SAMPLES = 8
SIZE = 16


def _dataset() -> Dataset:
    rng = np.random.default_rng(11)
    samples = [
        Sample(design="bench",
               x=rng.normal(size=(4, SIZE, SIZE)).astype(np.float32),
               y=np.tanh(rng.normal(size=(3, SIZE, SIZE))
                         ).astype(np.float32),
               true_congestion=0.5)
        for _ in range(SAMPLES)
    ]
    return Dataset(samples)


def _timed_run(root, name: str, dataset: Dataset,
               instrumented: bool) -> tuple[float, int]:
    spec = TrainSpec(name=name, data="inline", scale="smoke", seed=5,
                     epochs=EPOCHS, order="shuffle",
                     model={"base_filters": 4, "disc_filters": 4},
                     eval=EvalSpec(every_epochs=1))
    runner = Runner.create(spec, root, dataset=dataset,
                           telemetry=instrumented, trace=instrumented)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    assert result.completed
    return elapsed, result.global_step


def _disabled_span_ns(calls: int = 200_000) -> float:
    tracer = Tracer(None)
    span = tracer.span  # the exact hot-path attribute lookup pattern
    start = time.perf_counter_ns()
    for _ in range(calls):
        with span("noop"):
            pass
    return (time.perf_counter_ns() - start) / calls


def _observe_ns(calls: int = 200_000) -> float:
    histogram = Histogram()
    observe = histogram.observe
    start = time.perf_counter_ns()
    for index in range(calls):
        observe(0.001 * (index % 7))
    return (time.perf_counter_ns() - start) / calls


def test_obs_overhead(tmp_path, scale):
    dataset = _dataset()
    walls = {False: [], True: []}
    steps = 0
    for repeat in range(REPEATS):
        for instrumented in (False, True):
            tag = "on" if instrumented else "off"
            elapsed, steps = _timed_run(
                tmp_path / f"{tag}-{repeat}", f"bench-{tag}",
                dataset, instrumented)
            walls[instrumented].append(elapsed)
    best_off = min(walls[False])
    best_on = min(walls[True])
    overhead = best_on / best_off - 1.0

    span_ns = _disabled_span_ns()
    observe_ns = _observe_ns()

    lines = [
        f"Observability overhead (scale={scale.name}, {SAMPLES} samples "
        f"x {EPOCHS} epochs = {steps} steps, best of {REPEATS})",
        f"  uninstrumented run: {best_off:8.3f} s "
        f"({steps / best_off:6.1f} steps/s)",
        f"  instrumented run:   {best_on:8.3f} s  "
        f"(telemetry + tracing, overhead {overhead:+.2%})",
        f"  disabled span():    {span_ns:8.0f} ns/call (no-op singleton)",
        f"  histogram observe:  {observe_ns:8.0f} ns/call",
    ]
    write_result("obs", lines)

    entries = [
        entry("obs_train_uninstrumented", shape=[SAMPLES, 4, SIZE, SIZE],
              wall_time_s=best_off, throughput=steps / best_off),
        entry("obs_train_instrumented", shape=[SAMPLES, 4, SIZE, SIZE],
              wall_time_s=best_on, throughput=steps / best_on,
              overhead_fraction=round(overhead, 4)),
        entry("obs_disabled_span", wall_time_s=span_ns / 1e9,
              throughput=1e9 / span_ns),
        entry("obs_histogram_observe", wall_time_s=observe_ns / 1e9,
              throughput=1e9 / observe_ns),
    ]
    write_bench_json("obs", entries, scale.name)

    # The budget: full instrumentation must stay within MAX_OVERHEAD of
    # the uninstrumented wall time on the best-of-N comparison.
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget ({best_on:.3f}s vs {best_off:.3f}s)")
