"""E5 — Section 5.1: forecast speedup over detailed routing.

"The speedup is measured using the magnitude of routing runtime divided by
inference time" — the paper reports ~0.09 s inference against minutes-scale
routing.  Here both run on the same CPU, so the ratio is the honest
substrate-relative speedup.

This bench also owns the repo's canonical hot-path timings (training step
and single forecast, from ``workloads.py``) so ``BENCH_speedup.json``
records the perf trajectory of the ``repro.nn`` core against the pinned
pre-PR baselines in ``benchmarks/baselines/``.
"""

from conftest import write_result
from reporting import benchmark_entry, entry, write_bench_json
from workloads import measure_forecast_single, measure_train_step

from repro.flows import measure_speedup


def test_speedup(benchmark, scale, ode_bundle, ode_trainer, quality_checks):
    sample = ode_bundle.dataset[0]

    def infer():
        return ode_trainer.forecast(sample)

    benchmark(infer)
    report = measure_speedup(ode_bundle, ode_trainer, repeats=5)

    train = measure_train_step(scale)
    forecast = measure_forecast_single(scale)

    lines = [
        f"Section 5.1 speedup (design ode, scale={scale.name})",
        f"  mean routing runtime:   {report.mean_route_seconds * 1e3:8.1f} ms",
        f"  mean inference runtime: {report.mean_infer_seconds * 1e3:8.1f} ms",
        f"  speedup: {report.speedup:.0f}x",
        f"  hot path: training step {train['wall_time_s'] * 1e3:.2f} ms, "
        f"single forecast {forecast['wall_time_s'] * 1e3:.2f} ms "
        f"(image {scale.image_size}px)",
    ]
    write_result("speedup", lines)

    write_bench_json("speedup", [
        entry(**train),
        entry(**forecast),
        benchmark_entry("forecast_ode_trained", benchmark,
                        shape=sample.x.shape),
        entry("routing_pass", wall_time_s=report.mean_route_seconds,
              throughput=1.0 / report.mean_route_seconds),
        entry("route_vs_infer_speedup", speedup_over_routing=report.speedup),
    ], scale.name)

    # The paper's claim shape: inference is orders of magnitude faster than
    # routing.  At reduced scale we still require a clear win (at smoke
    # scale routing is itself trivial, so only positivity is checked).
    assert report.speedup > (3.0 if quality_checks else 0.0)
