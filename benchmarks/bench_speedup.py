"""E5 — Section 5.1: forecast speedup over detailed routing.

"The speedup is measured using the magnitude of routing runtime divided by
inference time" — the paper reports ~0.09 s inference against minutes-scale
routing.  Here both run on the same CPU, so the ratio is the honest
substrate-relative speedup.
"""

from conftest import write_result

from repro.flows import measure_speedup


def test_speedup(benchmark, scale, ode_bundle, ode_trainer, quality_checks):
    sample = ode_bundle.dataset[0]

    def infer():
        return ode_trainer.forecast(sample)

    benchmark(infer)
    report = measure_speedup(ode_bundle, ode_trainer, repeats=5)

    lines = [
        f"Section 5.1 speedup (design ode, scale={scale.name})",
        f"  mean routing runtime:   {report.mean_route_seconds * 1e3:8.1f} ms",
        f"  mean inference runtime: {report.mean_infer_seconds * 1e3:8.1f} ms",
        f"  speedup: {report.speedup:.0f}x",
    ]
    write_result("speedup", lines)

    # The paper's claim shape: inference is orders of magnitude faster than
    # routing.  At reduced scale we still require a clear win (at smoke
    # scale routing is itself trivial, so only positivity is checked).
    assert report.speedup > (3.0 if quality_checks else 0.0)
