"""E4 — Table 2: Acc.1 / Acc.2 / Top10 over the eight-design suite.

Reproduces the paper's headline table: per-pixel accuracy under training
strategy 1 (leave-one-design-out) and strategy 2 (plus fine-tuning on a few
pairs from the test design), and the Top-k ranking accuracy for selecting
minimum-congestion placements by forecast alone.
"""

from conftest import write_result
from reporting import benchmark_entry, entry, write_bench_json

from repro.flows.experiments import Table2Row, run_table2


def test_table2(benchmark, scale, suite_bundles, quality_checks):
    rows_holder = {}

    def run():
        rows_holder["rows"] = run_table2(
            scale, bundles=suite_bundles,
            log=lambda msg: print(f"[table2] {msg}"))
        return rows_holder["rows"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = rows_holder["rows"]

    lines = [
        f"Table 2 reproduction (scale={scale.name}, "
        f"epochs={scale.epochs}, {scale.placements_per_design} placements "
        f"per design, finetune on {scale.finetune_pairs} pairs)",
        Table2Row.header(),
    ]
    lines.extend(row.format() for row in rows)
    mean_acc1 = sum(r.acc1 for r in rows) / len(rows)
    mean_acc2 = sum(r.acc2 for r in rows) / len(rows)
    mean_top = sum(r.top10 for r in rows) / len(rows)
    import numpy as np

    mean_rho = float(np.nanmean([r.rank_rho for r in rows]))
    k_over_n = scale.top_k / max(scale.placements_per_design, 1)
    lines.append(f"{'mean':<10} {'':>7} {'':>6} {'':>7} {'':>4} "
                 f"{mean_acc1:>7.1%} {mean_acc2:>7.1%} {mean_top:>6.0%} "
                 f"{mean_rho:>6.2f}")
    lines.append(f"(random-selection Top-k baseline: {k_over_n:.0%}; "
                 f"rho is the Spearman rank correlation of forecast vs "
                 f"routed congestion)")
    write_result("table2", lines)
    write_bench_json("table2", [
        benchmark_entry("table2_suite", benchmark),
        entry("table2_means", acc1=mean_acc1, acc2=mean_acc2,
              top10=mean_top, rank_rho=mean_rho),
    ], scale.name)

    # Structural assertions hold at every scale.
    assert len(rows) == 8
    assert all(0.0 <= row.acc1 <= 1.0 for row in rows)
    if quality_checks:
        # Strategy 2 (transfer fine-tuning) should help on average (paper:
        # Acc.2 >= Acc.1 for every design).
        assert mean_acc2 >= mean_acc1 - 0.02
        # Forecast-based ranking must carry signal: positive mean rank
        # correlation.  (The Top-k overlap at k=4/n=12 is quantized to
        # multiples of 25% per design and too noisy to gate on; it is
        # reported for faithfulness to the paper's metric.)
        assert mean_rho > 0.0
