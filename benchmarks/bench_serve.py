"""E11 — serving throughput: micro-batching and the forecast cache.

Drives the :mod:`repro.serve` engine with a fixed request load at batch
caps 1 / 4 / 16 and measures end-to-end throughput, then measures the
cache-hit fast path.  The paper's speedup claim (Section 5.1) is about one
forecast versus one routing run; this bench quantifies the serving-side
multipliers on top: batching amortizes per-forward overhead, and the
content-addressed cache makes repeated queries (annealer snapshots that
barely move, re-scored exploration candidates) nearly free.
"""

import time

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json
from workloads import measure_serve_throughput

from repro.serve import BatchingEngine, ForecastCache, ModelRegistry

#: Total requests per throughput measurement.
NUM_REQUESTS = 48


def _request_inputs(bundle, count: int) -> list[np.ndarray]:
    """Distinct inputs: dataset samples plus deterministic perturbations."""
    base = [sample.x for sample in bundle.dataset]
    rng = np.random.default_rng(7)
    inputs = []
    for index in range(count):
        x = base[index % len(base)]
        if index >= len(base):
            x = (x + rng.normal(scale=0.01, size=x.shape)).astype(np.float32)
        inputs.append(x)
    return inputs


def _throughput(registry, inputs, max_batch: int) -> tuple[float, dict]:
    engine = BatchingEngine(registry, max_batch=max_batch,
                            max_wait_ms=20.0 if max_batch > 1 else 0.0)
    with engine:
        start = time.perf_counter()
        futures = [engine.submit("ode", x) for x in inputs]
        for future in futures:
            future.result(timeout=60.0)
        elapsed = time.perf_counter() - start
        stats = engine.stats()
    return len(inputs) / elapsed, stats


def test_serve_throughput(benchmark, scale, ode_bundle, ode_trainer):
    registry = ModelRegistry()
    registry.register("ode", ode_trainer.model)
    inputs = _request_inputs(ode_bundle, NUM_REQUESTS)

    throughput = {}
    occupancy = {}
    for max_batch in (1, 4, 16):
        if max_batch == 16:
            holder = {}

            def run():
                holder["result"] = _throughput(registry, inputs, 16)
                return holder["result"]

            benchmark.pedantic(run, rounds=1, iterations=1)
            rate, stats = holder["result"]
        else:
            rate, stats = _throughput(registry, inputs, max_batch)
        throughput[max_batch] = rate
        occupancy[max_batch] = stats["mean_batch_occupancy"]

    # Cache-hit fast path: prime one input, then query it repeatedly.
    cache = ForecastCache(64)
    engine = BatchingEngine(registry, max_batch=4, max_wait_ms=0.0,
                            cache=cache)
    with engine:
        engine.forecast("ode", inputs[0])         # miss: runs the generator
        start = time.perf_counter()
        for _ in range(50):
            engine.forecast("ode", inputs[0])     # hits
        hit_seconds = (time.perf_counter() - start) / 50
    assert cache.hits == 50

    lines = [
        f"Serving throughput (design ode, scale={scale.name}, "
        f"{NUM_REQUESTS} requests, image "
        f"{ode_bundle.layout.image_size}px)",
    ]
    for max_batch in (1, 4, 16):
        lines.append(
            f"  max_batch={max_batch:>2}: "
            f"{throughput[max_batch]:7.1f} forecasts/s  "
            f"(mean occupancy {occupancy[max_batch]:.1f}, "
            f"{throughput[max_batch] / throughput[1]:.2f}x vs batch-1)")
    lines.append(f"  cache hit: {hit_seconds * 1e6:7.0f} us/forecast  "
                 f"({1.0 / hit_seconds:,.0f} forecasts/s)")

    # Canonical engine-throughput workload (baseline-comparable).
    canonical = measure_serve_throughput(scale)
    lines.append(
        f"  canonical engine throughput (synthetic {scale.image_size}px "
        f"model, batch 16): {canonical['throughput']:7.1f} forecasts/s")
    write_result("serve", lines)

    image_size = ode_bundle.layout.image_size
    entries = [entry(**canonical)]
    for max_batch in (1, 4, 16):
        entries.append(entry(
            f"serve_ode_b{max_batch}",
            shape=[max_batch, 4, image_size, image_size],
            wall_time_s=1.0 / throughput[max_batch],
            throughput=throughput[max_batch],
            mean_batch_occupancy=occupancy[max_batch]))
    entries.append(entry("serve_cache_hit", wall_time_s=hit_seconds,
                         throughput=1.0 / hit_seconds))
    write_bench_json("serve", entries, scale.name)

    # Micro-batching must pay for itself, and cache hits must beat the
    # batched forward path by a wide margin.
    assert throughput[4] > throughput[1]
    assert hit_seconds < 1.0 / throughput[4]
