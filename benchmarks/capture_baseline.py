"""Pin the canonical hot-path timings as the perf-regression baseline.

Run against any checkout (``PYTHONPATH`` selects the code under test):

    PYTHONPATH=src python benchmarks/capture_baseline.py --scale smoke

and commit the resulting ``benchmarks/baselines/<scale>.json``.  The
committed files hold the *pre-PR-4* numbers — bench JSONs report
``speedup_vs_baseline`` against them, and CI's perf-smoke gate fails
when the training step regresses more than its allowance.  The file
records a machine calibration factor so comparisons made on different
hardware are normalized (see ``reporting.machine_calibration``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from reporting import BASELINE_DIR, machine_calibration  # noqa: E402
from workloads import measure_all  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None,
                        help="scale preset (default: $REPRO_SCALE)")
    parser.add_argument("--out", default=None,
                        help="output path (default: baselines/<scale>.json)")
    args = parser.parse_args()

    import os
    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    from repro.config import get_scale

    scale = get_scale()
    calibration = machine_calibration()
    print(f"scale={scale.name} image={scale.image_size}px "
          f"calibration={calibration * 1e3:.2f} ms")
    ops = {}
    for row in measure_all(scale):
        ops[row.pop("op")] = row
        name = next(reversed(ops))
        print(f"  {name:22s} wall={row['wall_time_s'] * 1e3:8.3f} ms  "
              f"throughput={row['throughput']:10.1f}/s")

    out = Path(args.out) if args.out else BASELINE_DIR / f"{scale.name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(
        {"scale": scale.name, "image_size": scale.image_size,
         "calibration_s": calibration, "ops": ops},
        indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
