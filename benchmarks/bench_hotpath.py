"""Hot-path gemm variants: thread scaling and int8 fused inference.

Measures the four execution variants of the conv hot paths —

* ``legacy``          — 1 thread, float32 (the bitwise reference path)
* ``threaded``        — N gemm-pool threads, float32
* ``int8``            — 1 thread, per-channel int8 quantized fused eval
* ``threaded_int8``   — N threads + int8

over the training step (batch 1, the paper's configuration, and batch 8
where batch-axis sharding has room to work) and the batched eval
forecast, plus a thread-scaling curve for the eval path.

Two invariants are asserted **unconditionally**, on every host:

* N-thread float32 results are bitwise equal to 1-thread results —
  trained weights and forecasts byte for byte (the determinism contract
  of :mod:`repro.nn.parallel`);
* int8 forecasts stay within a small absolute band of float32 (the
  tight accuracy gate lives in ``tests/test_nn_parallel.py`` against
  golden eval fixtures).

The speedup bars (>= 1.8x threaded, >= 1.5x int8 fused eval) are gated
on ``usable_cores() >= 4``: thread pools cannot beat physics on a
1-core container, and a rigged number would be worse than an honest
skip.  Measured walls, in-run ``speedup_vs_legacy`` ratios, and the
core count are recorded in ``BENCH_hotpath.json`` either way, so CI on
multi-core runners enforces the bars.
"""

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json
from workloads import _best_mean, _make_model, usable_cores

from repro.nn import set_num_threads, shutdown_pool

#: Thread counts for the eval scaling curve (capped by the host below).
THREAD_CURVE = (1, 2, 4)

TRAIN_REPS = 8
EVAL_REPS = 8


def _train_wall(scale, batch: int, threads: int,
                reps: int = TRAIN_REPS) -> float:
    set_num_threads(threads)
    model = _make_model(scale)
    rng = np.random.default_rng(0)
    side = scale.image_size
    x = rng.normal(size=(batch, 4, side, side)).astype(np.float32)
    y = rng.normal(size=(batch, 3, side, side)).astype(np.float32)
    for _ in range(2):
        model.train_step(x, y)
    return _best_mean(lambda: model.train_step(x, y), reps, trials=3)


def _eval_wall(scale, threads: int, mode: str, batch: int = 16,
               reps: int = EVAL_REPS) -> float:
    set_num_threads(threads)
    model = _make_model(scale).set_inference_mode(mode)
    rng = np.random.default_rng(1)
    side = scale.image_size
    xb = rng.normal(size=(batch, 4, side, side)).astype(np.float32)
    for _ in range(2):
        model.forecast(xb)
    return _best_mean(lambda: model.forecast(xb), reps, trials=3)


def _assert_bitwise_parity(scale, threads: int) -> None:
    """Train + forecast at 1 and at N threads must agree byte for byte."""
    side = scale.image_size
    rng = np.random.default_rng(3)
    x = rng.normal(size=(4, 4, side, side)).astype(np.float32)
    y = rng.normal(size=(4, 3, side, side)).astype(np.float32)
    states = []
    forecasts = []
    for n in (1, threads):
        set_num_threads(n)
        model = _make_model(scale)
        for _ in range(2):
            model.train_step(x, y)
        states.append(model.generator.state_dict())
        forecasts.append(model.forecast(x).copy())
    assert forecasts[0].tobytes() == forecasts[1].tobytes()
    for key, reference in states[0].items():
        assert states[1][key].tobytes() == reference.tobytes(), key


def test_hotpath_variants(benchmark, scale):
    cores = usable_cores()
    threads = max(2, min(4, cores))
    side = scale.image_size

    try:
        _assert_bitwise_parity(scale, threads)

        # int8 must track float32 closely on forecast images in [0, 1].
        set_num_threads(1)
        rng = np.random.default_rng(5)
        xb = rng.normal(size=(4, 4, side, side)).astype(np.float32)
        model = _make_model(scale)
        f32 = model.forecast(xb).copy()
        q8 = model.set_inference_mode("int8").forecast(xb).copy()
        int8_err = float(np.max(np.abs(f32 - q8)))
        assert int8_err < 0.05, int8_err

        # -- measurements ------------------------------------------------
        train1_legacy = _train_wall(scale, 1, 1)
        train1_threaded = _train_wall(scale, 1, threads)
        train8_legacy = _train_wall(scale, 8, 1)

        holder = {}

        def measure_threaded_train8():
            holder["wall"] = _train_wall(scale, 8, threads)
            return holder["wall"]

        benchmark.pedantic(measure_threaded_train8, rounds=1, iterations=1)
        train8_threaded = holder["wall"]

        eval_legacy = _eval_wall(scale, 1, "float32")
        eval_int8 = _eval_wall(scale, 1, "int8")
        eval_threaded = _eval_wall(scale, threads, "float32")
        eval_threaded_int8 = _eval_wall(scale, threads, "int8")

        curve = []
        for n in sorted({min(n, cores) for n in THREAD_CURVE} | {1}):
            curve.append((n, _eval_wall(scale, n, "float32")))
    finally:
        set_num_threads(1)
        shutdown_pool()

    def speedup(base, wall):
        return round(base / wall, 3)

    entries = [
        entry("train_step", shape=[1, 4, side, side],
              wall_time_s=train1_legacy, throughput=1.0 / train1_legacy,
              variant="legacy", threads=1, cores=cores),
        entry("train_step_threaded", shape=[1, 4, side, side],
              wall_time_s=train1_threaded,
              throughput=1.0 / train1_threaded,
              baseline_op="train_step", variant="threaded",
              threads=threads, cores=cores,
              speedup_vs_legacy=speedup(train1_legacy, train1_threaded)),
        entry("train_step_b8", shape=[8, 4, side, side],
              wall_time_s=train8_legacy, throughput=8.0 / train8_legacy,
              variant="legacy", threads=1, cores=cores),
        entry("train_step_b8_threaded", shape=[8, 4, side, side],
              wall_time_s=train8_threaded,
              throughput=8.0 / train8_threaded,
              baseline_op="train_step_b8", variant="threaded",
              threads=threads, cores=cores,
              speedup_vs_legacy=speedup(train8_legacy, train8_threaded)),
        entry("eval_batch16", shape=[16, 4, side, side],
              wall_time_s=eval_legacy, throughput=16.0 / eval_legacy,
              variant="legacy", threads=1, cores=cores),
        entry("eval_batch16_threaded", shape=[16, 4, side, side],
              wall_time_s=eval_threaded, throughput=16.0 / eval_threaded,
              baseline_op="eval_batch16", variant="threaded",
              threads=threads, cores=cores,
              speedup_vs_legacy=speedup(eval_legacy, eval_threaded)),
        entry("eval_batch16_int8", shape=[16, 4, side, side],
              wall_time_s=eval_int8, throughput=16.0 / eval_int8,
              baseline_op="eval_batch16", variant="int8", threads=1,
              cores=cores, max_abs_err=int8_err,
              speedup_vs_legacy=speedup(eval_legacy, eval_int8)),
        entry("eval_batch16_threaded_int8", shape=[16, 4, side, side],
              wall_time_s=eval_threaded_int8,
              throughput=16.0 / eval_threaded_int8,
              baseline_op="eval_batch16", variant="threaded_int8",
              threads=threads, cores=cores,
              speedup_vs_legacy=speedup(eval_legacy, eval_threaded_int8)),
    ]
    for n, wall in curve:
        entries.append(
            entry(f"eval_batch16_threads{n}", shape=[16, 4, side, side],
                  wall_time_s=wall, throughput=16.0 / wall,
                  baseline_op="eval_batch16", variant="scaling_curve",
                  threads=n, cores=cores,
                  speedup_vs_legacy=speedup(curve[0][1], wall)))
    write_bench_json("hotpath", entries, scale.name)

    lines = [f"hot-path gemm variants ({scale.name}, {cores} usable "
             f"core(s), pool width {threads})",
             f"{'op':<28} {'variant':<15} {'thr':>3} {'wall ms':>10} "
             f"{'vs legacy':>10}"]
    for row in entries:
        ratio = row.get("speedup_vs_legacy")
        lines.append(
            f"{row['op']:<28} {row.get('variant', ''):<15} "
            f"{row.get('threads', 1):>3} {row['wall_time_s'] * 1e3:>10.3f} "
            f"{(f'{ratio:.2f}x' if ratio else '--'):>10}")
    lines.append(f"int8 forecast max abs err vs float32: {int8_err:.5f}")
    write_result("hotpath_variants", lines)

    # Perf bars only where the host can physically deliver them.
    if cores >= 4:
        assert train8_legacy / train8_threaded >= 1.8, (
            f"threaded train step {train8_legacy / train8_threaded:.2f}x "
            f"< 1.8x on a {cores}-core host")
        assert eval_legacy / eval_threaded >= 1.8, (
            f"threaded batched eval {eval_legacy / eval_threaded:.2f}x "
            f"< 1.8x on a {cores}-core host")
        assert eval_legacy / eval_int8 >= 1.5, (
            f"int8 fused eval {eval_legacy / eval_int8:.2f}x < 1.5x "
            f"vs float32 fused on a {cores}-core host")
