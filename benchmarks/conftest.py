"""Shared fixtures for the experiment benchmarks.

Datasets are generated once per session (and cached on disk under
``.cache/``) so every bench reuses the same placements and ground truth.
Each bench writes its paper-style result table to ``benchmarks/results/``;
a terminal-summary hook echoes those tables at the end of the run.

Scale is selected with ``REPRO_SCALE`` (default ``default``; use ``smoke``
for a fast pass, ``paper`` for the full published configuration).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import get_scale
from repro.flows import build_suite_bundles
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer

CACHE_DIR = Path(__file__).parent.parent / ".cache"
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, lines: list[str]) -> None:
    """Persist a bench's report table and echo it into the bench log."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(text)


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def quality_checks(scale):
    """Whether to assert the paper's quality/shape claims.

    At ``smoke`` scale the model is deliberately untrained (1 epoch, tiny
    filters) and only the plumbing is validated; ``default`` and ``paper``
    scales enforce the claims.
    """
    return scale.name != "smoke"


@pytest.fixture(scope="session")
def suite_bundles(scale):
    """Datasets for the whole (scaled) Table 2 suite, disk-cached."""
    return build_suite_bundles(scale, seed=1, cache_dir=CACHE_DIR,
                               log=lambda msg: print(f"[datagen] {msg}"))


@pytest.fixture(scope="session")
def or1200_bundle(suite_bundles):
    return suite_bundles["OR1200"]


@pytest.fixture(scope="session")
def ode_bundle(suite_bundles):
    return suite_bundles["ode"]


@pytest.fixture(scope="session")
def single_design_epochs(scale):
    """Epoch budget for single-design fits.

    ``scale.epochs`` is calibrated for leave-one-design-out training over
    the whole suite (7x the samples per epoch); single-design benches train
    on one design's placements and need proportionally more epochs to reach
    the same step count.
    """
    return scale.epochs * 4


@pytest.fixture(scope="session")
def ode_trainer(scale, suite_bundles, ode_bundle):
    """A forecaster for the ode design (shared by Fig 9 / realtime /
    speedup benches).

    Trained on the whole suite (ode included): cross-design diversity is
    what teaches the model the placement-to-congestion mapping rather than
    memorizing one design's mean heat map — the same reason the paper's
    Top10 numbers come from its strategy-2 (pooled + fine-tuned) models.
    """
    from repro.gan.dataset import Dataset

    combined = Dataset()
    for bundle in suite_bundles.values():
        combined.extend(bundle.dataset)
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=ode_bundle.layout.image_size, seed=0))
    trainer = Pix2PixTrainer(model, seed=0)
    trainer.fit(combined, scale.epochs * 2)
    return trainer


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS_DIR.exists():
        return
    reports = sorted(RESULTS_DIR.glob("*.txt"))
    if not reports:
        return
    terminalreporter.section("reproduction results")
    for report in reports:
        terminalreporter.write_line(f"--- {report.name} " + "-" * 40)
        terminalreporter.write_line(report.read_text())
