"""Canonical hot-path workloads shared by benches and the baseline pin.

These measure the repo's four performance-critical operations on
synthetic data derived only from the experiment scale — no dataset or
trained checkpoint required — so ``capture_baseline.py`` can pin the
exact same workloads on any git revision and the bench JSONs can report
honest speedups against them.

All timings are best-of-N means (robust against scheduler noise on
shared machines).
"""

from __future__ import annotations

import os
import time

import numpy as np


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware).

    Container CPU quotas and taskset masks make ``os.cpu_count()`` lie;
    the scheduler affinity set is the honest parallelism budget, so the
    benches gate their scaling assertions on it.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:     # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_mean(fn, reps: int, trials: int = 4) -> float:
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def _make_model(scale):
    from repro.gan import Pix2Pix, Pix2PixConfig

    return Pix2Pix(Pix2PixConfig.from_scale(scale, seed=0))


def _inputs(scale, count: int) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    side = scale.image_size
    return [rng.normal(size=(4, side, side)).astype(np.float32)
            for _ in range(count)]


def measure_train_step(scale, reps: int = 20) -> dict:
    """Mean seconds per batch-1 adversarial training step."""
    model = _make_model(scale)
    rng = np.random.default_rng(0)
    side = scale.image_size
    x = rng.normal(size=(1, 4, side, side)).astype(np.float32)
    y = rng.normal(size=(1, 3, side, side)).astype(np.float32)
    for _ in range(3):
        model.train_step(x, y)
    wall = _best_mean(lambda: model.train_step(x, y), reps)
    return {"op": "train_step", "shape": [1, 4, side, side],
            "wall_time_s": wall, "throughput": 1.0 / wall}


def measure_forecast_single(scale, reps: int = 40) -> dict:
    """Mean seconds per deterministic single-input forecast."""
    model = _make_model(scale)
    x = _inputs(scale, 1)[0]
    for _ in range(3):
        model.forecast(x)
    wall = _best_mean(lambda: model.forecast(x), reps)
    side = scale.image_size
    return {"op": "forecast_single", "shape": [4, side, side],
            "wall_time_s": wall, "throughput": 1.0 / wall}


def measure_eval_batch(scale, batch: int = 16, reps: int = 12) -> dict:
    """Mean seconds per deterministic batch forecast (the eval unit)."""
    model = _make_model(scale)
    rng = np.random.default_rng(1)
    side = scale.image_size
    xb = rng.normal(size=(batch, 4, side, side)).astype(np.float32)
    for _ in range(2):
        model.forecast(xb)
    wall = _best_mean(lambda: model.forecast(xb), reps)
    return {"op": f"eval_batch{batch}", "shape": [batch, 4, side, side],
            "wall_time_s": wall, "throughput": batch / wall}


def measure_serve_throughput(scale, max_batch: int = 16,
                             num_requests: int = 48,
                             trials: int = 4) -> dict:
    """End-to-end engine throughput over a fixed pre-submitted load."""
    from repro.serve import BatchingEngine, ModelRegistry

    model = _make_model(scale)
    registry = ModelRegistry()
    registry.register("bench", model)
    inputs = _inputs(scale, num_requests)
    best = float("inf")
    for _ in range(trials):
        engine = BatchingEngine(registry, max_batch=max_batch,
                                max_wait_ms=20.0 if max_batch > 1 else 0.0)
        try:
            engine = engine.start()
        except TypeError:      # older signatures, defensive
            pass
        try:
            for x in inputs[:4]:
                engine.forecast("bench", x)
            start = time.perf_counter()
            futures = [engine.submit("bench", x) for x in inputs]
            for future in futures:
                future.result(timeout=120.0)
            best = min(best, time.perf_counter() - start)
        finally:
            engine.stop()
    side = scale.image_size
    return {"op": f"serve_throughput_b{max_batch}",
            "shape": [max_batch, 4, side, side],
            "wall_time_s": best / num_requests,
            "throughput": num_requests / best}


def measure_all(scale) -> list[dict]:
    """The canonical op set, in reporting order."""
    return [
        measure_train_step(scale),
        measure_forecast_single(scale),
        measure_eval_batch(scale),
        measure_serve_throughput(scale),
    ]
