"""E13 — evaluation throughput: batched metrics and the streaming runner.

Two measurements:

* **metric kernels** — every registered metric evaluated over a batch of
  64 forecast/truth pairs in one vectorized call versus a per-sample
  Python loop.  The acceptance bar: the batched pass is at least 5x
  faster in aggregate.
* **end-to-end eval** — ``evaluate_store`` samples/sec over a sharded
  store with a tiny checkpoint, per-sample (batch 1) versus batched
  (batch 16), which is what ``repro eval run`` users experience.
"""

import time

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json
from workloads import measure_eval_batch

from repro.data import ShardedStore
from repro.eval import CheckpointForecaster, evaluate_store, metric_suite
from repro.gan import Dataset
from tests.conftest import make_sample, make_tiny_model

#: Batch size for the kernel measurement (the acceptance batch).
BATCH = 64
#: Image side for the kernel measurement.  Vectorization pays off most
#: where per-call overhead rivals per-pixel compute; 12px sits at the
#: tiny-fixture end of the repo's image sizes, where the per-sample loop
#: is squarely overhead-bound.
KERNEL_SIZE = 12
#: Kernel timing repeats (best-of).
REPEATS = 3
#: Samples in the end-to-end store.
NUM_SAMPLES = 32
EVAL_SIZE = 16


def _best_of(repeats, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_eval_throughput(tmp_path):
    rng = np.random.default_rng(0)
    pred = rng.random((BATCH, 3, KERNEL_SIZE, KERNEL_SIZE))
    target = rng.random((BATCH, 3, KERNEL_SIZE, KERNEL_SIZE))
    suite = metric_suite()

    batched_seconds = {}
    loop_seconds = {}
    for name, metric in suite.items():
        batched_seconds[name] = _best_of(
            REPEATS, lambda metric=metric: metric(pred, target))

        def run_loop(metric=metric):
            for index in range(BATCH):
                metric(pred[index], target[index])

        loop_seconds[name] = _best_of(REPEATS, run_loop)
    batched_total = sum(batched_seconds.values())
    loop_total = sum(loop_seconds.values())
    speedup = loop_total / batched_total

    # End-to-end: streaming eval of a checkpoint over a sharded store.
    dataset = Dataset([make_sample("bench", size=EVAL_SIZE, seed=i)
                       for i in range(NUM_SAMPLES)])
    store = ShardedStore.from_dataset(tmp_path / "store", dataset,
                                      shard_size=8)
    checkpoint = tmp_path / "model.npz"
    make_tiny_model(seed=1, image_size=EVAL_SIZE).save(checkpoint)
    forecaster = CheckpointForecaster.from_checkpoint(checkpoint)

    pipeline_rate = {}
    for batch_size in (1, 16):
        start = time.perf_counter()
        result = evaluate_store(store, forecaster, batch_size=batch_size)
        pipeline_rate[batch_size] = (result.num_samples
                                     / (time.perf_counter() - start))

    lines = [
        f"Evaluation throughput (batch {BATCH}, "
        f"{KERNEL_SIZE}px kernel images, {len(suite)} metrics)",
        f"  {'metric':<24} {'batched':>10} {'loop':>10} {'speedup':>8}",
    ]
    for name in suite:
        ratio = loop_seconds[name] / batched_seconds[name]
        lines.append(f"  {name:<24} {batched_seconds[name] * 1e3:8.2f}ms "
                     f"{loop_seconds[name] * 1e3:8.2f}ms {ratio:7.1f}x")
    lines.append(f"  {'total':<24} {batched_total * 1e3:8.2f}ms "
                 f"{loop_total * 1e3:8.2f}ms {speedup:7.1f}x")
    lines.append(
        f"  streaming eval ({NUM_SAMPLES} samples, {EVAL_SIZE}px): "
        f"{pipeline_rate[1]:6.1f} samples/s at batch 1, "
        f"{pipeline_rate[16]:6.1f} samples/s at batch 16 "
        f"({pipeline_rate[16] / pipeline_rate[1]:.2f}x)")
    write_result("eval", lines)

    from repro.config import get_scale

    scale = get_scale()
    canonical = measure_eval_batch(scale)
    write_bench_json("eval", [
        entry(**canonical),
        entry("metrics_batched", shape=[BATCH, 3, KERNEL_SIZE, KERNEL_SIZE],
              wall_time_s=batched_total, throughput=BATCH / batched_total),
        entry("metrics_loop", shape=[BATCH, 3, KERNEL_SIZE, KERNEL_SIZE],
              wall_time_s=loop_total, throughput=BATCH / loop_total),
        entry("eval_store_b1", wall_time_s=1.0 / pipeline_rate[1],
              throughput=pipeline_rate[1]),
        entry("eval_store_b16", wall_time_s=1.0 / pipeline_rate[16],
              throughput=pipeline_rate[16]),
    ], scale.name)

    # Acceptance: vectorizing the metric pass must pay for itself 5x over.
    assert speedup >= 5.0, (
        f"batched metric evaluation only {speedup:.1f}x faster than the "
        f"per-sample loop (need >= 5x)")
