"""E9 — Figure 9: constrained placement exploration using the ode design.

Selects placements by forecast alone for the five objectives of Figure 9
(overall max/min congestion; min congestion in the upper / lower / right
regions) and scores each choice against the routed ground truth.
"""

from conftest import RESULTS_DIR, write_result
from reporting import benchmark_entry, entry, write_bench_json

from repro.flows import run_exploration
from repro.viz import write_png


def test_fig9_exploration(benchmark, scale, ode_bundle, ode_trainer,
                          quality_checks):
    holder = {}

    def run():
        holder["outcome"] = run_exploration(ode_bundle, ode_trainer)
        return holder["outcome"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    outcome = holder["outcome"]

    lines = [
        f"Figure 9 constrained exploration (design ode, scale={scale.name}, "
        f"{len(ode_bundle.dataset)} candidate placements)",
        f"  forecast-vs-truth rank correlation (overall): "
        f"rho={outcome.rank_correlation:.2f}",
        f"  {'objective':<12} {'chosen':>6} {'pred':>8} {'true':>8} "
        f"{'oracle':>6} {'regret':>8} {'hit':>4}",
    ]
    out_dir = RESULTS_DIR / "fig9"
    for obj in outcome.outcomes:
        lines.append(
            f"  {obj.objective:<12} {obj.chosen_index:>6} "
            f"{obj.predicted_score:>8.3f} {obj.true_score:>8.3f} "
            f"{obj.best_true_index:>6} {obj.regret:>8.4f} "
            f"{'yes' if obj.hit else 'no':>4}")
        sample = ode_bundle.dataset[obj.chosen_index]
        write_png(out_dir / f"{obj.objective}_place.png",
                  sample.place_image)
        write_png(out_dir / f"{obj.objective}_truth.png", sample.y_image)
        write_png(out_dir / f"{obj.objective}_forecast.png",
                  ode_trainer.forecast(sample))
    write_result("fig9_exploration", lines)
    write_bench_json("fig9_exploration", [
        benchmark_entry("exploration_sweep", benchmark),
        entry("exploration_rank_rho",
              rank_rho=outcome.rank_correlation),
    ], scale.name)

    overall_max = outcome.by_objective("overall-max")
    overall_min = outcome.by_objective("overall-min")
    if quality_checks:
        # Shape claims: the forecaster must rank placements usefully —
        # positive rank correlation, and its max pick truly more congested
        # than its min pick.
        assert outcome.rank_correlation > 0.0
        assert overall_max.true_score >= overall_min.true_score
    # Regret is non-negative everywhere; for the overall objectives it is
    # bounded by the candidate congestion spread (regional objectives have
    # their own, possibly wider, regional score ranges).
    spread = max(s.true_congestion for s in ode_bundle.dataset) - min(
        s.true_congestion for s in ode_bundle.dataset)
    for obj in outcome.outcomes:
        assert obj.regret >= 0.0
        if obj.region == "overall":
            assert obj.regret <= spread + 1e-9
