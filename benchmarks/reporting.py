"""Machine-readable benchmark reports: ``BENCH_<name>.json`` emission.

Every ``bench_*.py`` writes, next to its human-readable table in
``benchmarks/results/``, a JSON document of measurement entries so the
perf trajectory is diffable across PRs:

    {"bench": "serve", "scale": "smoke", "calibration_s": 0.0123,
     "entries": [{"op": "serve_throughput_b16", "shape": [16, 4, 32, 32],
                  "wall_time_s": ..., "throughput": ...,
                  "speedup_vs_baseline": 2.01}, ...]}

``speedup_vs_baseline`` compares against the committed pre-PR numbers in
``benchmarks/baselines/<scale>.json`` (see ``capture_baseline.py``),
normalized by each machine's calibration factor — a fixed numpy workload
timed at capture and at bench time — so the ratio survives running the
bench on hardware slower or faster than the baseline host.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_DIR = Path(__file__).parent / "baselines"


def machine_calibration(repeats: int = 5) -> float:
    """Seconds for a fixed single-thread numpy workload (best-of).

    Used to normalize wall times across machines: a host that runs this
    2x slower is expected to run the benches about 2x slower too.
    """
    rng = np.random.default_rng(12345)
    a = rng.normal(size=(192, 192)).astype(np.float32)
    b = rng.normal(size=(192, 192)).astype(np.float32)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = a
        for _ in range(12):
            acc = np.maximum(acc @ b, 0.0)
            acc = acc + a
        float(acc.sum())
        best = min(best, time.perf_counter() - start)
    return best


def entry(op: str, *, shape=None, wall_time_s: float | None = None,
          throughput: float | None = None, **extra) -> dict:
    """One measurement row (op, shape, wall time, throughput + extras)."""
    row = {
        "op": op,
        "shape": list(shape) if shape is not None else None,
        "wall_time_s": wall_time_s,
        "throughput": throughput,
        "speedup_vs_baseline": None,
    }
    row.update(extra)
    return row


def benchmark_entry(op: str, benchmark, *, shape=None,
                    items_per_round: float = 1.0, **extra) -> dict:
    """Build an entry from a pytest-benchmark fixture's recorded stats."""
    mean = None
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        inner = getattr(stats, "stats", stats)
        mean = float(getattr(inner, "mean"))
    throughput = items_per_round / mean if mean else None
    return entry(op, shape=shape, wall_time_s=mean, throughput=throughput,
                 **extra)


def load_baseline(scale_name: str) -> dict | None:
    path = BASELINE_DIR / f"{scale_name}.json"
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def write_bench_json(name: str, entries: list[dict], scale_name: str,
                     calibration_s: float | None = None) -> Path:
    """Write ``results/BENCH_<name>.json``, resolving baseline speedups.

    Speedup is ``baseline_wall / wall`` with both sides divided by their
    host's calibration time; entries whose op has no committed baseline
    keep ``speedup_vs_baseline: null``.  A row may carry a
    ``baseline_op`` naming the committed op it should be compared
    against — how variant rows (``eval_batch16_int8``, ...) resolve
    against the pre-variant pinned op (``eval_batch16``).
    """
    if calibration_s is None:
        calibration_s = machine_calibration()
    baseline = load_baseline(scale_name)
    base_ops = (baseline or {}).get("ops", {})
    base_calib = (baseline or {}).get("calibration_s") or None
    for row in entries:
        base = base_ops.get(row["op"])
        if not base and row.get("baseline_op"):
            base = base_ops.get(row["baseline_op"])
        wall = row.get("wall_time_s")
        if not base or not wall or not base.get("wall_time_s"):
            continue
        ratio = base["wall_time_s"] / wall
        if base_calib and calibration_s:
            ratio *= calibration_s / base_calib
        row["speedup_vs_baseline"] = round(ratio, 4)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "scale": scale_name,
        "calibration_s": calibration_s,
        "entries": entries,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
