"""E6 — Section 5.2: color scheme vs grayscale input.

The paper reports that converting img_place to grayscale costs 3-5% per-pixel
accuracy while saving ~20% training and ~50% inference time; the accuracy
direction (color >= gray) is the claim checked here.
"""

from conftest import write_result
from reporting import entry, write_bench_json

from repro.flows import run_grayscale_ablation


def test_grayscale_vs_color(benchmark, scale, or1200_bundle,
                            single_design_epochs):
    holder = {}

    def run():
        holder["cmp"] = run_grayscale_ablation(
            scale, or1200_bundle, epochs=single_design_epochs, holdout=2,
            seed=0)
        return holder["cmp"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = holder["cmp"]

    lines = [
        f"Section 5.2 color vs grayscale (design OR1200, "
        f"scale={scale.name}, epochs={single_design_epochs})",
        f"  color     accuracy: {comparison.color_accuracy:7.1%}   "
        f"train {comparison.color_train_seconds:6.1f}s   "
        f"infer {comparison.color_infer_seconds * 1e3:6.1f}ms",
        f"  grayscale accuracy: {comparison.gray_accuracy:7.1%}   "
        f"train {comparison.gray_train_seconds:6.1f}s   "
        f"infer {comparison.gray_infer_seconds * 1e3:6.1f}ms",
        f"  accuracy drop (paper: 3-5%): "
        f"{comparison.accuracy_drop:+.1%}",
    ]
    write_result("sec52_grayscale", lines)
    write_bench_json("sec52_grayscale", [
        entry("color_infer", wall_time_s=comparison.color_infer_seconds,
              accuracy=comparison.color_accuracy),
        entry("gray_infer", wall_time_s=comparison.gray_infer_seconds,
              accuracy=comparison.gray_accuracy),
    ], scale.name)

    # Shape claim: the color scheme should not be worse than grayscale
    # (the paper reports a 3-5% drop when going grayscale).
    assert comparison.color_accuracy >= comparison.gray_accuracy - 0.05
