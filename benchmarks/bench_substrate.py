"""S1 — substrate micro-benchmarks: placer, router, renderer, model.

Not a paper artifact; these keep the substrate's performance visible so
regressions in the annealer/router/conv kernels are caught alongside the
experiment benches.
"""

import numpy as np
from conftest import write_result
from reporting import benchmark_entry, write_bench_json

from repro.fpga import PathFinderRouter, Placement, PlacerOptions, SimulatedAnnealingPlacer
from repro.gan import Pix2Pix, Pix2PixConfig
from repro.viz import render_placement


def test_placer_throughput(benchmark, scale, suite_bundles):
    bundle = suite_bundles["OR1200"]
    options = PlacerOptions(seed=11, alpha_t=0.6, inner_num=0.5)

    def anneal():
        return SimulatedAnnealingPlacer(
            bundle.netlist, bundle.arch, options).place()

    result = benchmark(anneal)
    write_result("substrate_placer", [
        f"placer: {result.num_moves} moves, "
        f"improvement {result.improvement:.1%}",
    ])
    write_bench_json("substrate_placer", [
        benchmark_entry("placer_anneal", benchmark,
                        items_per_round=result.num_moves),
    ], scale.name)
    assert result.improvement > 0.1


def test_router_throughput(benchmark, scale, suite_bundles):
    bundle = suite_bundles["OR1200"]
    placement = bundle.placements[0]

    def route():
        return PathFinderRouter(bundle.netlist, bundle.arch,
                                placement).route()

    result = benchmark(route)
    write_result("substrate_router", [
        f"router: {bundle.netlist.num_nets} nets, wirelength "
        f"{result.wirelength}, converged={result.converged} "
        f"in {result.iterations} iterations",
    ])
    write_bench_json("substrate_router", [
        benchmark_entry("router_route", benchmark,
                        items_per_round=bundle.netlist.num_nets),
    ], scale.name)
    assert set(result.net_trees) == {n.id for n in bundle.netlist.nets}


def test_render_throughput(benchmark, suite_bundles):
    bundle = suite_bundles["OR1200"]
    image = benchmark(render_placement, bundle.placements[0], bundle.layout)
    assert image.shape == (bundle.layout.image_size,
                           bundle.layout.image_size, 3)
    from repro.config import get_scale
    write_bench_json("substrate_render", [
        benchmark_entry("render_placement", benchmark, shape=image.shape),
    ], get_scale().name)


def test_generator_inference_rate(benchmark, scale, suite_bundles):
    bundle = suite_bundles["OR1200"]
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=bundle.layout.image_size))
    x = bundle.dataset[0].x[None]

    out = benchmark(model.generate, x)
    assert out.shape[1] == 3
    write_bench_json("substrate_generator", [
        benchmark_entry("generator_forward", benchmark, shape=x.shape),
    ], scale.name)


def test_train_step_rate(benchmark, scale, suite_bundles):
    bundle = suite_bundles["OR1200"]
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=bundle.layout.image_size))
    sample = bundle.dataset[0]

    losses = benchmark(model.train_step, sample.x[None], sample.y[None])
    assert np.isfinite(losses.g_total)
    write_bench_json("substrate_train_step", [
        benchmark_entry("train_step_or1200", benchmark,
                        shape=sample.x[None].shape),
    ], scale.name)
