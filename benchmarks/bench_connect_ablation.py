"""Extension — connectivity-channel ablation (lambda = 0.1 vs 0).

DESIGN.md calls out the connectivity-image weighting for ablation: the
paper stacks ``lambda * img_connect`` onto the placement image with
lambda = 0.1.  This bench trains the same model with and without the
connectivity channel and compares held-out accuracy and ranking.
"""

import numpy as np
from conftest import write_result
from reporting import benchmark_entry, entry, write_bench_json
from scipy.stats import spearmanr

from repro.gan import (
    Dataset,
    Pix2Pix,
    Pix2PixConfig,
    Pix2PixTrainer,
    image_congestion_score,
)


def _zero_connect(dataset: Dataset) -> Dataset:
    """Copy of the dataset with the connectivity channel zeroed."""
    from repro.gan.dataset import Sample

    stripped = Dataset()
    for sample in dataset:
        x = sample.x.copy()
        x[3] = 0.0
        stripped.append(Sample(
            design=sample.design, x=x, y=sample.y,
            true_congestion=sample.true_congestion,
            placer_options=sample.placer_options,
            route_seconds=sample.route_seconds,
            place_seconds=sample.place_seconds,
            converged=sample.converged,
        ))
    return stripped


def test_connect_channel_ablation(benchmark, scale, ode_bundle,
                                  single_design_epochs):
    holder = {}

    def run():
        results = {}
        for variant in ("with-connect", "no-connect"):
            dataset = (ode_bundle.dataset if variant == "with-connect"
                       else _zero_connect(ode_bundle.dataset))
            train = dataset[:-3]
            test = dataset[len(dataset) - 3:]
            model = Pix2Pix(Pix2PixConfig.from_scale(
                scale, image_size=ode_bundle.layout.image_size, seed=0))
            trainer = Pix2PixTrainer(model, seed=0)
            trainer.fit(train, single_design_epochs)
            mask = ode_bundle.channel_mask
            accuracy = trainer.mean_accuracy(test)
            predicted = [image_congestion_score(trainer.forecast(s), mask)
                         for s in dataset]
            truth = [s.true_congestion for s in dataset]
            rho = float(spearmanr(predicted, truth).statistic)
            results[variant] = (accuracy, rho)
        holder["results"] = results
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = holder["results"]

    lines = [
        f"Extension: connectivity-channel ablation (design ode, "
        f"scale={scale.name}, epochs={single_design_epochs})",
        f"  {'variant':<14} {'holdout acc':>12} {'rank rho':>9}",
    ]
    for variant, (accuracy, rho) in results.items():
        lines.append(f"  {variant:<14} {accuracy:>12.1%} {rho:>9.2f}")
    lines.append("  (paper stacks lambda*img_connect = 0.1 onto the input; "
                 "the channel should not hurt)")
    write_result("connect_ablation", lines)
    write_bench_json("connect_ablation", [
        benchmark_entry("connect_ablation_run", benchmark),
    ] + [entry(f"accuracy_{variant}", accuracy=accuracy, rank_rho=rho)
         for variant, (accuracy, rho) in results.items()], scale.name)

    with_acc = results["with-connect"][0]
    without_acc = results["no-connect"][0]
    # Loose shape check: the connectivity channel must not be destructive.
    assert with_acc >= without_acc - 0.10
