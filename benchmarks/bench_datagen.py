"""E12 — dataset platform throughput: parallel generation and streaming.

Measures the ``repro.data`` pipeline against the serial Section-5 loop:

* **build throughput** — placements routed and rendered per second, serial
  versus a worker pool (the paper's 200-placement-per-design sweeps are
  embarrassingly parallel across placements);
* **loader throughput** — samples per second streamed out of a sharded
  store versus iterated from the in-memory dataset, with and without
  dihedral augmentation.

Worker-pool speedup is hardware-dependent: on a single-core container the
pool only adds process overhead, so the report prints the measured ratio
alongside the CPU count rather than asserting a speedup.
"""

import os
import time

from conftest import write_result
from reporting import entry, write_bench_json

from repro.config import custom_scale, get_scale
from repro.data import MemoryLoader, ShardedStore, StreamingLoader, build_design_store
from repro.fpga.generators import scaled_suite

#: Placements per build measurement (enough to amortize pool start-up).
NUM_PLACEMENTS = 8
WORKER_COUNTS = (2, 4)
LOADER_EPOCHS = 20


def _build(tmp_path, spec, scale, workers: int) -> tuple[float, ShardedStore]:
    start = time.perf_counter()
    store = build_design_store(
        spec, scale, tmp_path / f"store-w{workers}",
        num_placements=NUM_PLACEMENTS, seed=1, workers=workers,
        shard_size=4)
    return time.perf_counter() - start, store


def _loader_rate(loader, epochs: int = LOADER_EPOCHS) -> float:
    count = 0
    start = time.perf_counter()
    for epoch in range(epochs):
        for x_batch, _ in loader.epoch(epoch):
            count += x_batch.shape[0]
    return count / (time.perf_counter() - start)


def test_datagen_throughput(tmp_path, scale):
    bench_scale = custom_scale(get_scale("smoke"),
                               placements_per_design=NUM_PLACEMENTS)
    spec = scaled_suite(bench_scale)[0]
    cpus = os.cpu_count() or 1

    serial_seconds, store = _build(tmp_path, spec, bench_scale, workers=0)
    lines = [
        "E12  dataset platform throughput "
        f"(smoke scale, {NUM_PLACEMENTS} placements, {cpus} CPU(s))",
        "",
        "build (place + route + render per placement):",
        f"  serial:      {NUM_PLACEMENTS / serial_seconds:7.2f} "
        f"placements/s  ({serial_seconds:.2f}s)",
    ]
    reference = store.sample_hashes
    for workers in WORKER_COUNTS:
        pool_seconds, pool_store = _build(tmp_path, spec, bench_scale,
                                          workers=workers)
        assert pool_store.sample_hashes == reference  # determinism
        lines.append(
            f"  {workers} workers:   "
            f"{NUM_PLACEMENTS / pool_seconds:7.2f} placements/s  "
            f"({pool_seconds:.2f}s, {serial_seconds / pool_seconds:.2f}x "
            f"vs serial)")

    dataset = store.to_dataset()
    rates = {
        "in-memory": _loader_rate(MemoryLoader(dataset, seed=1)),
        "streaming": _loader_rate(StreamingLoader(store, seed=1)),
        "streaming+augment": _loader_rate(
            StreamingLoader(store, seed=1, augment=True)),
    }
    lines += ["", f"loader ({LOADER_EPOCHS} epochs x "
                  f"{len(dataset)} samples, batch 1):"]
    for name, rate in rates.items():
        lines.append(f"  {name:<18} {rate:9.0f} samples/s")
    streaming_penalty = rates["in-memory"] / rates["streaming"]
    lines.append(f"  streaming reads shards from disk each epoch: "
                 f"{streaming_penalty:.1f}x the in-memory cost")

    write_result("datagen", lines)
    entries = [entry("datagen_build_serial",
                     wall_time_s=serial_seconds / NUM_PLACEMENTS,
                     throughput=NUM_PLACEMENTS / serial_seconds)]
    entries += [entry(f"loader_{name.replace('+', '_').replace('-', '_')}",
                      wall_time_s=1.0 / rate, throughput=rate)
                for name, rate in rates.items()]
    write_bench_json("datagen", entries, scale.name)
    assert store.verify() == []
    # Streaming must stay shard-bounded no matter the corpus size.
    loader = StreamingLoader(store, seed=2)
    for _ in loader.epoch(0):
        pass
    assert loader.peak_resident_samples <= 4
