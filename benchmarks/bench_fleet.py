"""Fleet serving: multi-worker scaling, byte identity, shared cache.

Drives the :mod:`repro.fleet` router with a sustained request load at 1
and 4 process workers and records sustained RPS and p99 latency.  Two
invariants are asserted unconditionally:

* **byte identity** — the 4-worker fleet's forecasts are bitwise equal
  to a single in-process engine's (the repo's exactness discipline);
* **shared cache** — a repeated request is served from the router's
  cache without touching any worker.

The >= 2x sustained-RPS scaling assertion is gated on the host actually
having >= 4 usable cores: worker processes cannot beat physics on a
1-core container, and a rigged baseline would be worse than an honest
skip.  The measured ``scaling_x`` and ``cores`` are always recorded in
``BENCH_fleet.json`` either way, so CI on multi-core runners enforces
the scaling bar.
"""

import time

import numpy as np
from conftest import write_result
from reporting import entry, write_bench_json
from workloads import _inputs, _make_model, usable_cores

from repro.fleet import FleetRouter
from repro.serve import BatchingEngine, ForecastCache, ModelRegistry

#: Requests per sustained-load measurement.
NUM_REQUESTS = 64


def _fleet_load(checkpoints, workers: int, inputs,
                trials: int = 2) -> dict:
    """Best-of sustained throughput + latency through a process fleet."""
    best = None
    for _ in range(trials):
        router = FleetRouter.local(checkpoints, workers=workers,
                                   mode="process", max_batch=8,
                                   max_wait_ms=2.0,
                                   max_inflight=len(inputs) + 8,
                                   worker_queue_limit=len(inputs) + 8)
        with router:
            for x in inputs[:4]:                       # warm the pipes
                router.forecast_result("bench", x, timeout=120.0)
            start = time.perf_counter()
            futures = [router.submit("bench", x, timeout=120.0)
                       for x in inputs]
            images = [future.result(120.0).image for future in futures]
            elapsed = time.perf_counter() - start
            stats = router.stats()
        measured = {
            "rps": len(inputs) / elapsed,
            "p99_ms": stats["latency_p99_ms"],
            "mean_ms": stats["mean_latency_ms"],
            "images": images,
        }
        if best is None or measured["rps"] > best["rps"]:
            best = measured
    return best


def test_fleet_scaling(benchmark, scale, tmp_path_factory):
    checkpoints = tmp_path_factory.mktemp("fleet-ckpt")
    model = _make_model(scale)
    model.save(checkpoints / "bench.npz")
    inputs = _inputs(scale, NUM_REQUESTS)

    # Single-engine reference: the byte-identity yardstick.
    registry = ModelRegistry.from_directory(checkpoints)
    with BatchingEngine(registry, max_batch=8, max_wait_ms=2.0) as engine:
        reference = [engine.forecast_result("bench", x, timeout=120.0).image
                     for x in inputs]

    holder = {}

    def run_four_workers():
        holder["w4"] = _fleet_load(checkpoints, 4, inputs)
        return holder["w4"]

    w1 = _fleet_load(checkpoints, 1, inputs)
    benchmark.pedantic(run_four_workers, rounds=1, iterations=1)
    w4 = holder["w4"]

    # Byte identity is unconditional: every fleet forecast must equal
    # the single-engine forecast bit for bit.
    for expected, image in zip(reference, w4["images"]):
        assert np.array_equal(image, expected)

    scaling = w4["rps"] / w1["rps"]
    cores = usable_cores()

    # Shared-cache fast path at the router.
    cache = ForecastCache(64)
    router = FleetRouter.local(checkpoints, workers=2, mode="process",
                               cache=cache)
    with router:
        router.forecast_result("bench", inputs[0], timeout=120.0)  # miss
        start = time.perf_counter()
        for _ in range(50):
            hit = router.forecast_result("bench", inputs[0], timeout=120.0)
        hit_seconds = (time.perf_counter() - start) / 50
    assert cache.hits == 50
    assert hit.cached is True

    side = scale.image_size
    lines = [
        f"Fleet serving (scale={scale.name}, {NUM_REQUESTS} requests, "
        f"{side}px, {cores} usable core(s))",
        f"  1 process worker : {w1['rps']:7.1f} rps  "
        f"(p99 {w1['p99_ms']:.1f} ms)",
        f"  4 process workers: {w4['rps']:7.1f} rps  "
        f"(p99 {w4['p99_ms']:.1f} ms)",
        f"  scaling 1->4: {scaling:.2f}x"
        + ("" if cores >= 4 else "  [not asserted: <4 cores]"),
        f"  shared cache hit: {hit_seconds * 1e6:7.0f} us/forecast",
        "  byte identity 4-worker fleet vs single engine: exact",
    ]
    write_result("fleet", lines)

    entries = [
        entry("fleet_w1", shape=[1, 4, side, side],
              wall_time_s=1.0 / w1["rps"], throughput=w1["rps"],
              p99_ms=w1["p99_ms"], workers=1, cores=cores),
        entry("fleet_w4", shape=[4, 4, side, side],
              wall_time_s=1.0 / w4["rps"], throughput=w4["rps"],
              p99_ms=w4["p99_ms"], workers=4, cores=cores,
              scaling_x=round(scaling, 4),
              byte_identical=True),
        entry("fleet_cache_hit", wall_time_s=hit_seconds,
              throughput=1.0 / hit_seconds),
    ]
    write_bench_json("fleet", entries, scale.name)

    # Latency must stay bounded under the fleet: p99 is a real number
    # and the cache path beats the forward path outright.
    assert w4["p99_ms"] > 0
    assert hit_seconds < 1.0 / w1["rps"]
    if cores >= 4:
        # The acceptance bar, enforced where the hardware can express
        # it: 4 workers must at least double sustained throughput.
        assert scaling >= 2.0, (
            f"fleet scaling {scaling:.2f}x < 2x on {cores} cores")
