"""Extension — cGAN vs the classic RUDY estimator.

The paper positions the cGAN against feature-based congestion predictors;
the canonical non-learned reference is RUDY (bounding-box demand spreading).
This bench compares both, in the same image space, on heat-map fidelity
(per-pixel accuracy) and on placement ranking (Spearman correlation with
routed congestion) over the ode placement pool.
"""

import numpy as np
from conftest import write_result
from reporting import benchmark_entry, entry, write_bench_json
from scipy.stats import spearmanr

from repro.fpga import PathFinderRouter
from repro.gan.baselines import RudyForecaster
from repro.gan.metrics import image_congestion_score, per_pixel_accuracy


def test_cgan_vs_rudy(benchmark, scale, ode_bundle, ode_trainer,
                      quality_checks):
    bundle = ode_bundle
    routed = [PathFinderRouter(bundle.netlist, bundle.arch, p).route()
              for p in bundle.placements]
    forecaster = RudyForecaster(bundle.netlist, bundle.arch, bundle.layout)
    forecaster.calibrate(
        bundle.placements,
        [(r.h_utilization(), r.v_utilization()) for r in routed])

    rudy_image = benchmark(forecaster.forecast, bundle.placements[0])
    assert rudy_image.shape[2] == 3

    mask = bundle.channel_mask
    gan_acc, rudy_acc = [], []
    gan_scores, rudy_scores, truths = [], [], []
    for sample, placement in zip(bundle.dataset, bundle.placements):
        truth_img = sample.y_image
        gan_img = ode_trainer.forecast(sample)
        rudy_img = forecaster.forecast(placement,
                                       place_image=sample.place_image)
        gan_acc.append(per_pixel_accuracy(gan_img, truth_img))
        rudy_acc.append(per_pixel_accuracy(rudy_img, truth_img))
        gan_scores.append(image_congestion_score(gan_img, mask))
        rudy_scores.append(forecaster.congestion_score(placement))
        truths.append(sample.true_congestion)

    gan_rho = float(spearmanr(gan_scores, truths).statistic)
    rudy_rho = float(spearmanr(rudy_scores, truths).statistic)
    lines = [
        f"Extension: cGAN vs RUDY baseline (design ode, scale={scale.name})",
        f"  {'model':<8} {'per-pixel acc':>14} {'rank rho':>9}",
        f"  {'cGAN':<8} {np.mean(gan_acc):>14.1%} {gan_rho:>9.2f}",
        f"  {'RUDY':<8} {np.mean(rudy_acc):>14.1%} {rudy_rho:>9.2f}",
        "  note: RUDY here is favoured twice over — it is least-squares",
        "  calibrated on this design's own routed ground truth, and it",
        "  paints over the exact placement image (the cGAN must generate",
        "  structure pixels too).  At the paper's full training budget the",
        "  learned model is expected to close and invert the fidelity gap;",
        "  at reduced scale RUDY wins fidelity, and both rank placements",
        "  usefully.  See EXPERIMENTS.md.",
    ]
    write_result("baseline_rudy", lines)
    write_bench_json("baseline_rudy", [
        benchmark_entry("rudy_forecast", benchmark, shape=rudy_image.shape),
        entry("cgan_fidelity", accuracy=float(np.mean(gan_acc)),
              rank_rho=gan_rho),
        entry("rudy_fidelity", accuracy=float(np.mean(rudy_acc)),
              rank_rho=rudy_rho),
    ], scale.name)

    if quality_checks:
        # Defensible claims at reduced scale: both predictors carry real
        # ranking signal, and the cGAN's ranking is competitive.
        assert gan_rho > 0.0
        assert rudy_rho > 0.0
