"""E2 — Figure 2: the motivating-example image pipeline.

Benchmarks producing one complete (img_floor, img_place, img_route, diff)
panel set — place, route, render — and checks the Figure 2 invariants: the
routing image differs from the placement image only on channel pixels, and
the difference image (Figure 2e) is zero outside the channels.
"""

import numpy as np
from conftest import write_result
from reporting import benchmark_entry, write_bench_json

from repro.fpga import PathFinderRouter, Placement, PlacerOptions, SimulatedAnnealingPlacer
from repro.viz import (
    difference_image,
    render_floorplan,
    render_placement,
    render_routing,
)


def test_fig2_pipeline(benchmark, scale, suite_bundles):
    bundle = suite_bundles["diffeq1"]
    netlist, arch, layout = bundle.netlist, bundle.arch, bundle.layout

    def panel():
        result = SimulatedAnnealingPlacer(
            netlist, arch, PlacerOptions(seed=21, alpha_t=0.8)).place()
        placement = Placement(netlist, arch, list(result.placement.site_of))
        routing = PathFinderRouter(netlist, arch, placement).route()
        floor = render_floorplan(arch, layout)
        place = render_placement(placement, layout, base=floor)
        route = render_routing(placement, routing, layout, place_image=place)
        return floor, place, route, routing

    floor, place, route, routing = benchmark.pedantic(
        panel, rounds=1, iterations=1)

    diff = difference_image(route, place)
    mask = bundle.channel_mask
    changed = diff.max(axis=-1) > 1e-6

    lines = [
        f"Figure 2 pipeline (design diffeq1, scale={scale.name})",
        f"  grid {arch.width}x{arch.height}, channel width "
        f"{arch.channel_width}, image {layout.image_size}px",
        f"  routing {'succeeded' if routing.converged else 'overflowed'} "
        f"with a channel width factor of {arch.channel_width}",
        f"  mean utilization {routing.mean_utilization:.3f}, "
        f"max {routing.max_utilization:.3f}",
        f"  img_route - img_place differs on {changed.mean():.1%} of "
        f"pixels, all inside routing channels: "
        f"{bool(not (changed & ~mask).any())}",
    ]
    write_result("fig2_pipeline", lines)
    write_bench_json("fig2_pipeline", [
        benchmark_entry("fig2_panel", benchmark, shape=place.shape),
    ], scale.name)

    # Figure 2's central observation: images change only on channels.
    assert not (changed & ~mask).any()
    assert changed.any()
    # Floor vs place differ only on block pixels, never on channels.
    floor_delta = difference_image(place, floor).max(axis=-1) > 1e-6
    assert not (floor_delta & mask).any()
